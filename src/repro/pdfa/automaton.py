"""Probabilistic deterministic finite automata (PDFA).

Section 4.3 suggests PDFA distance as an alternative flowgraph-similarity
φ, and the related work (§7) contrasts flowgraph induction with grammar
induction [5, 18]: learn the PDFA that generated a set of strings.  This
package implements that comparator line end to end — the automaton, the
prefix-tree acceptor, ALERGIA state merging, and a distance usable as φ.

A PDFA here is:

* a set of integer states with a single start state;
* deterministic transitions ``state → {symbol: successor}`` carrying
  traversal counts;
* per-state termination counts.

Counts (not probabilities) are stored so merging states is exact; the
probability view normalises on demand.  Strings are tuples of hashable
symbols — for flow analysis, location sequences.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Sequence

from repro.errors import FlowCubeError

__all__ = ["PDFA", "prefix_tree_acceptor"]


class PDFA:
    """A probabilistic DFA with count-weighted transitions."""

    def __init__(self) -> None:
        self.start = 0
        self._next_state = 1
        #: state → {symbol: successor state}.
        self.delta: dict[int, dict[object, int]] = {0: {}}
        #: state → {symbol: traversal count}.
        self.transition_counts: dict[int, Counter] = {0: Counter()}
        #: state → termination count.
        self.termination_counts: Counter = Counter()
        #: state → total arrivals (strings passing through or ending here).
        self.state_counts: Counter = Counter()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def new_state(self) -> int:
        """Allocate a fresh state id."""
        state = self._next_state
        self._next_state += 1
        self.delta[state] = {}
        self.transition_counts[state] = Counter()
        return state

    def add_string(self, symbols: Sequence, count: int = 1) -> None:
        """Thread one string through the automaton, creating states."""
        state = self.start
        self.state_counts[state] += count
        for symbol in symbols:
            successor = self.delta[state].get(symbol)
            if successor is None:
                successor = self.new_state()
                self.delta[state][symbol] = successor
            self.transition_counts[state][symbol] += count
            state = successor
            self.state_counts[state] += count
        self.termination_counts[state] += count

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def states(self) -> set[int]:
        """All states reachable from the start state."""
        seen = {self.start}
        stack = [self.start]
        while stack:
            for successor in self.delta[stack.pop()].values():
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        return seen

    def successors(self, state: int) -> dict[object, int]:
        """Outgoing ``symbol → state`` map of *state*."""
        return dict(self.delta[state])

    def out_distribution(self, state: int) -> dict[object, float]:
        """Outgoing probabilities of *state*, termination under ``None``."""
        total = self.state_counts[state]
        if total == 0:
            return {}
        dist: dict[object, float] = {
            symbol: count / total
            for symbol, count in self.transition_counts[state].items()
        }
        termination = self.termination_counts[state]
        if termination:
            dist[None] = termination / total
        return dist

    def string_probability(self, symbols: Sequence) -> float:
        """Probability the PDFA generates exactly *symbols* and stops."""
        state = self.start
        probability = 1.0
        for symbol in symbols:
            total = self.state_counts[state]
            count = self.transition_counts[state].get(symbol, 0)
            if total == 0 or count == 0:
                return 0.0
            probability *= count / total
            state = self.delta[state][symbol]
        total = self.state_counts[state]
        if total == 0:
            return 0.0
        return probability * self.termination_counts[state] / total

    def enumerate_strings(
        self, min_probability: float = 1e-6
    ) -> Iterator[tuple[tuple, float]]:
        """All strings with generation probability ≥ *min_probability*.

        Depth-first over the transition graph; terminates even on merged
        (cyclic) automata because extending a string never raises its
        probability and every branch below the floor is cut.
        """
        if min_probability <= 0:
            raise FlowCubeError("min_probability must be positive")
        stack: list[tuple[int, tuple, float]] = [(self.start, (), 1.0)]
        while stack:
            state, prefix, probability = stack.pop()
            total = self.state_counts[state]
            if total == 0:
                continue
            termination = self.termination_counts[state]
            if termination:
                p = probability * termination / total
                if p >= min_probability:
                    yield prefix, p
            for symbol, count in self.transition_counts[state].items():
                p = probability * count / total
                if p >= min_probability:
                    stack.append((self.delta[state][symbol], prefix + (symbol,), p))

    def n_states(self) -> int:
        """Number of reachable states."""
        return len(self.states)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        n_transitions = sum(len(d) for d in self.delta.values())
        return f"PDFA(states={self.n_states()}, transitions={n_transitions})"


def prefix_tree_acceptor(strings: Iterable[Sequence]) -> PDFA:
    """The prefix-tree acceptor (PTA): one state per distinct prefix.

    The PTA reproduces the empirical distribution exactly; ALERGIA
    generalises it by merging compatible states.
    """
    pdfa = PDFA()
    for string in strings:
        pdfa.add_string(tuple(string))
    return pdfa
