"""PDFA induction (ALERGIA) and PDFA-based flowgraph similarity (§4.3, §7)."""

from repro.pdfa.alergia import alergia, hoeffding_compatible
from repro.pdfa.automaton import PDFA, prefix_tree_acceptor
from repro.pdfa.distance import (
    flowgraph_pdfa_similarity,
    flowgraph_to_pdfa,
    pdfa_similarity,
    string_distribution_distance,
)

__all__ = [
    "PDFA",
    "alergia",
    "flowgraph_pdfa_similarity",
    "flowgraph_to_pdfa",
    "hoeffding_compatible",
    "pdfa_similarity",
    "prefix_tree_acceptor",
    "string_distribution_distance",
]
