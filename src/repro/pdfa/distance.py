"""PDFA distances and the PDFA-based flowgraph similarity φ (Section 4.3).

Two automata are compared on the distributions they induce:

* :func:`string_distribution_distance` — total variation over the union
  of strings each automaton generates with probability above a floor
  (exact on acyclic automata, a tight truncation otherwise);
* :func:`pdfa_similarity` — ``1 - distance``, in ``[0, 1]``;
* :func:`flowgraph_pdfa_similarity` — the paper's optional φ: induce a
  PDFA from each flowgraph's cell paths with ALERGIA and compare.  It is
  pluggable anywhere a
  :data:`~repro.core.similarity.SimilarityMetric` is accepted
  (:func:`repro.core.redundancy.prune_redundant` in particular).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.aggregation import AggregatedPath
from repro.core.flowgraph import FlowGraph
from repro.pdfa.alergia import alergia
from repro.pdfa.automaton import PDFA

__all__ = [
    "string_distribution_distance",
    "pdfa_similarity",
    "flowgraph_to_pdfa",
    "flowgraph_pdfa_similarity",
]


def string_distribution_distance(
    a: PDFA, b: PDFA, min_probability: float = 1e-4
) -> float:
    """Truncated total-variation distance between two PDFA distributions.

    Strings carrying less than *min_probability* in **both** automata are
    ignored; the result is within ``min_probability * |support|`` of the
    true total variation and exactly it for acyclic automata whose mass
    sits above the floor.
    """
    dist_a = dict(a.enumerate_strings(min_probability))
    dist_b = dict(b.enumerate_strings(min_probability))
    strings = set(dist_a) | set(dist_b)
    return 0.5 * sum(
        abs(dist_a.get(s, 0.0) - dist_b.get(s, 0.0)) for s in strings
    )


def pdfa_similarity(a: PDFA, b: PDFA, min_probability: float = 1e-4) -> float:
    """``1 -`` :func:`string_distribution_distance`, clamped to [0, 1]."""
    return max(
        0.0, 1.0 - string_distribution_distance(a, b, min_probability)
    )


def flowgraph_to_pdfa(
    paths: Sequence[AggregatedPath], alpha: float = 0.99
) -> PDFA:
    """Induce a PDFA from a cell's aggregated paths (locations only).

    Durations are marginalised out — the PDFA view models the location
    process, like :func:`repro.core.similarity.path_distribution_similarity`.

    The default ``alpha`` is deliberately strict (ALERGIA's Hoeffding
    bound shrinks as alpha → 1): when the PDFA feeds a *distance*, false
    merges on the small samples of a flowcube cell distort the induced
    distribution, and distribution fidelity matters more than aggressive
    generalisation.  Pass the classic 0.05 for induction experiments.
    """
    strings = [tuple(location for location, _ in path) for path in paths]
    return alergia(strings=strings, alpha=alpha)


def flowgraph_pdfa_similarity(
    g1: FlowGraph, g2: FlowGraph, alpha: float = 0.99
) -> float:
    """The PDFA-based φ: ALERGIA on each graph's route distribution.

    Flowgraphs carry their route distribution explicitly
    (:meth:`~repro.core.flowgraph.FlowGraph.enumerate_paths`), so the
    training strings are reconstructed from it with their observed
    multiplicities — no access to the original cell paths needed, which
    lets this φ run on compacted cubes.
    """
    return pdfa_similarity(
        _pdfa_from_flowgraph(g1, alpha), _pdfa_from_flowgraph(g2, alpha)
    )


def _pdfa_from_flowgraph(graph: FlowGraph, alpha: float) -> PDFA:
    pdfa = PDFA()
    for locations, probability in graph.enumerate_paths():
        count = round(probability * graph.n_paths)
        if count > 0:
            pdfa.add_string(locations, count)
    return alergia(pta=pdfa, alpha=alpha)
