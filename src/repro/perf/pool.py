"""Persistent shared-memory worker pools for out-of-core builds.

The PR-2 ``jobs=N`` machinery created its process pools inside each
build, and every task paid pickling for whatever state it touched.  At
small scales the spawn + serialisation overhead dwarfed the partition
work and made parallel builds *slower* than serial ones.  This module is
the replacement: a fork-once pool that outlives a single pass — and, when
the caller wants, a single build — plus a shared-memory transaction layout
that lets every worker read the interned mining rows without any
per-task pickling.

Three pieces:

* :class:`WorkerPool` — ``jobs`` single-worker
  :class:`~concurrent.futures.ProcessPoolExecutor` slots created once
  (forked where the platform allows) and reused across passes, builds,
  and benchmark sweep points.  Slot routing is deterministic
  (``partition_id % jobs``), so partition-affine caches inside the
  workers stay hot pass after pass.  Every task runs through a timing
  wrapper, so the pool accounts ``worker_busy_seconds`` next to the
  coordinator's wall clock, and the one-off fork cost is recorded in
  ``spawn_seconds`` where the benchmarks can subtract it.
* :class:`SharedRows` — interned transaction rows
  (:class:`~repro.perf.interning.InternedTransactions`-shaped: sorted
  dense-id ``array('i')`` rows, grouped by partition) packed into one
  :class:`multiprocessing.shared_memory.SharedMemory` segment.  Workers
  attach by *name* (a tiny string task) and read rows as zero-copy
  ``memoryview`` casts — no row is ever pickled.  Per-item tid bitmaps
  are derived from the attached rows worker-side and cached across the
  level-wise passes (they are plain big ints and cannot alias shared
  memory, but they are built exactly once per partition per build).
* :class:`PoolStats` — spawn count/seconds, shared segment bytes, task
  batches, and worker busy seconds; builders fold it into
  :class:`~repro.store.builder.BuildStats` and the benchmarks persist it.

The pool is deliberately generic: tasks are module-level callables
(picklable by reference) executed against a per-process context dict
(:func:`worker_context`), so the store builder can register partition
scans, mining counts, and exception batches without this package
importing the store layer (``repro.perf`` stays a leaf package).

Lifecycle contract: :meth:`WorkerPool.close` — or the context-manager
exit — always unlinks every shared segment, even when a worker raised
mid-pass; the test suite asserts ``/dev/shm`` comes back clean.
"""

from __future__ import annotations

import os
import threading
import time
from array import array
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context, shared_memory

from repro.errors import StoreError

__all__ = [
    "PoolStats",
    "SharedRows",
    "WorkerPool",
    "cached_masks",
    "cached_setrows",
    "count_ids_masks",
    "count_ids_scan",
    "oversubscription_warning",
    "resolve_jobs",
    "shared_rows",
    "worker_context",
]

#: Prefix of every shared-memory segment this module creates; the leak
#: checks in the benchmarks scan ``/dev/shm`` for it.
SHM_PREFIX = "fcube"


def resolve_jobs(jobs: int) -> int:
    """Validate and resolve a ``jobs`` request.

    ``0`` resolves to ``cpu_count - 1`` (floor 1) — "use the machine but
    leave a core for the coordinator".  Anything else must be an integer
    ``>= 1``.  Oversubscription (``jobs > cpu_count``) is allowed; the
    CLI warns about it instead of silently degrading.
    """
    if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 0:
        raise StoreError(f"jobs must be an integer >= 0, got {jobs!r}")
    if jobs == 0:
        return max(1, (os.cpu_count() or 2) - 1)
    return jobs


def oversubscription_warning(jobs: int) -> str | None:
    """A human warning when *jobs* exceeds the machine, else ``None``."""
    cpus = os.cpu_count() or 1
    if jobs > cpus:
        return (
            f"--jobs {jobs} exceeds the machine's {cpus} CPU(s); workers "
            "will time-slice instead of running in parallel"
        )
    return None


@dataclass
class PoolStats:
    """Counters one :class:`WorkerPool` accumulates over its lifetime.

    Attributes:
        jobs: Worker slots in the pool.
        spawn_count: Worker processes forked (once per slot per
            :meth:`WorkerPool.start`, however many builds reuse them).
        spawn_seconds: Wall clock spent creating and warming the workers
            — the cost the persistent pool pays once and per-build pools
            paid every time.
        shm_segments: Shared-memory segments created (lifetime total).
        shm_bytes: Bytes placed in shared memory (lifetime total).
        task_batches: Tasks submitted (each is one batched unit of work —
            a partition pass, a cell batch, a broadcast).
        worker_busy_seconds: Sum of in-worker execution time across all
            tasks, measured inside the worker around the task body.
    """

    jobs: int = 0
    spawn_count: int = 0
    spawn_seconds: float = 0.0
    shm_segments: int = 0
    shm_bytes: int = 0
    task_batches: int = 0
    worker_busy_seconds: float = 0.0

    def as_dict(self) -> dict:
        """JSON-ready snapshot (rounded like ``BuildStats.as_dict``)."""
        return {
            "jobs": self.jobs,
            "spawn_count": self.spawn_count,
            "spawn_seconds": round(self.spawn_seconds, 4),
            "shm_segments": self.shm_segments,
            "shm_bytes": self.shm_bytes,
            "task_batches": self.task_batches,
            "worker_busy_seconds": round(self.worker_busy_seconds, 4),
        }


# ----------------------------------------------------------------------
# shared-memory row storage
# ----------------------------------------------------------------------
#
# Layout of one segment (little-endian, natively aligned):
#
#   [0]              int64   n_partitions
#   [1]              int64   n_rows (total)
#   parts            int64[n_partitions + 1]   row-index boundaries
#   offsets          int64[n_rows + 1]         item-index boundaries
#   data             int32[total_items]        sorted dense item ids
#
# Rows are recovered as memoryview slices of ``data`` — attaching a
# segment allocates the views lazily and copies nothing.

_HEADER = 2  # int64 slots before the partition table


def _pack_sizes(part_rows: Sequence[int], total_items: int) -> int:
    n_rows = sum(part_rows)
    n64 = _HEADER + (len(part_rows) + 1) + (n_rows + 1)
    return n64 * 8 + total_items * 4


class SharedRows:
    """Interned transaction rows in one shared-memory segment.

    Create with :meth:`pack` (coordinator side), attach with
    :meth:`attach` (worker side).  Both sides expose the same read API:
    :meth:`rows` yields one partition's rows as ``memoryview('i')``
    slices in transaction order, zero-copy.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, owner: bool
    ) -> None:
        self._shm = shm
        self._owner = owner
        # Cast only the header slice: the full buffer's byte length is
        # not necessarily a multiple of 8 (the data tail is int32).
        head = shm.buf[: _HEADER * 8].cast("q")
        n_parts = head[0]
        n_rows = head[1]
        head.release()
        parts_end = _HEADER + n_parts + 1
        offsets_end = parts_end + n_rows + 1
        self._parts = shm.buf[_HEADER * 8 : parts_end * 8].cast("q")
        self._offsets = shm.buf[parts_end * 8 : offsets_end * 8].cast("q")
        self._data = shm.buf[offsets_end * 8 :].cast("i")

    # -- construction ---------------------------------------------------
    @classmethod
    def pack(
        cls,
        partitions: Sequence[Sequence[array]],
        name: str | None = None,
    ) -> "SharedRows":
        """Pack per-partition interned rows into a fresh segment.

        Args:
            partitions: One list of sorted ``array('i')`` rows per
                partition, in partition order (the builder feeds one
                partition at a time, so only one partition's rows are
                ever live on the Python heap alongside the segment).
            name: Optional explicit segment name (tests); defaults to a
                kernel-assigned one under :data:`SHM_PREFIX`.
        """
        part_rows = [len(rows) for rows in partitions]
        total_items = sum(
            len(row) for rows in partitions for row in rows
        )
        nbytes = _pack_sizes(part_rows, total_items)
        shm = shared_memory.SharedMemory(
            create=True, size=max(nbytes, _HEADER * 8), name=name
        )
        head = shm.buf[: _HEADER * 8].cast("q")
        n_parts = len(partitions)
        n_rows = sum(part_rows)
        head[0] = n_parts
        head[1] = n_rows
        head.release()
        parts_end = _HEADER + n_parts + 1
        offsets_end = parts_end + n_rows + 1
        parts = shm.buf[_HEADER * 8 : parts_end * 8].cast("q")
        offsets = shm.buf[parts_end * 8 : offsets_end * 8].cast("q")
        data = shm.buf[offsets_end * 8 :].cast("i")
        row_index = 0
        item_index = 0
        parts[0] = 0
        offsets[0] = 0
        for part_id, rows in enumerate(partitions):
            for row in rows:
                n = len(row)
                data[item_index : item_index + n] = memoryview(row)
                item_index += n
                row_index += 1
                offsets[row_index] = item_index
            parts[part_id + 1] = row_index
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "SharedRows":
        """Attach an existing segment by name (worker side, zero-copy).

        The attaching process must not let its resource tracker adopt the
        segment: the creator owns the unlink, and forked workers share
        the creator's tracker process, so stray register/unregister pairs
        from attachers corrupt its accounting (the tracker's cache is a
        set).  ``SharedMemory`` registers unconditionally on attach, so
        registration is suppressed for the duration of the constructor.
        """
        try:  # pragma: no cover - tracker internals, version-dependent
            from multiprocessing import resource_tracker

            original = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
        except Exception:
            original = None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            if original is not None:
                resource_tracker.register = original
        return cls(shm, owner=False)

    # -- reads ----------------------------------------------------------
    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def nbytes(self) -> int:
        return self._shm.size

    @property
    def n_partitions(self) -> int:
        return len(self._parts) - 1

    def n_rows(self, partition: int) -> int:
        return self._parts[partition + 1] - self._parts[partition]

    def rows(self, partition: int) -> Iterable[memoryview]:
        """One partition's rows, zero-copy, in transaction order."""
        offsets = self._offsets
        data = self._data
        for row_index in range(
            self._parts[partition], self._parts[partition + 1]
        ):
            yield data[offsets[row_index] : offsets[row_index + 1]]

    def item_masks(self, partition: int, n_items: int) -> list[int]:
        """Per-item tid bitmaps over one partition's rows.

        The id-space twin of :func:`repro.perf.bitmap.item_masks`,
        reading straight from the segment.  Workers cache the result per
        partition for the lifetime of the build (masks are what every
        level-wise counting pass consumes).
        """
        masks = [0] * n_items
        bit = 1
        for row in self.rows(partition):
            for item_id in row:
                masks[item_id] |= bit
            bit <<= 1
        return masks

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Release the mapping (and the segment itself for the owner)."""
        # memoryview casts pin the underlying buffer; drop them first.
        self._parts.release()
        self._offsets.release()
        self._data.release()
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # already gone (double close)
                pass


# ----------------------------------------------------------------------
# id-space counting kernels (consume SharedRows)
# ----------------------------------------------------------------------

def count_ids_masks(
    masks: Sequence[int], flat: array, lengths: array
) -> array:
    """Support of flattened id-candidates via AND + popcount.

    The shared-memory twin of
    :func:`~repro.perf.bitmap.count_candidates_masks`: candidates arrive
    as one flat ``array('i')`` plus per-candidate lengths (no tuples to
    pickle), supports leave as one ``array('q')`` aligned with candidate
    order (no Counter of itemsets to pickle).
    """
    out = array("q", bytes(8 * len(lengths)))
    cursor = 0
    for index, length in enumerate(lengths):
        mask = masks[flat[cursor]]
        if mask:
            for position in range(cursor + 1, cursor + length):
                mask &= masks[flat[position]]
                if not mask:
                    break
            if mask:
                out[index] = mask.bit_count()
        cursor += length
    return out


def count_ids_scan(
    rows: Sequence[frozenset], flat: array, lengths: array
) -> array:
    """The subset-test twin of :func:`count_ids_masks` (``kernel="scan"``).

    Walks the transactions exactly like
    :func:`repro.mining.apriori.count_candidates` does, in id space over
    frozenset rows the worker materialised once from the shared segment.
    """
    candidates: list[tuple] = []
    cursor = 0
    for length in lengths:
        candidates.append(tuple(flat[cursor : cursor + length]))
        cursor += length
    out = array("q", bytes(8 * len(candidates)))
    for row in rows:
        for index, candidate in enumerate(candidates):
            for item_id in candidate:
                if item_id not in row:
                    break
            else:
                out[index] += 1
    return out


# ----------------------------------------------------------------------
# the worker side
# ----------------------------------------------------------------------

_WORKER: dict = {}


def worker_context() -> dict:
    """The per-process scratch dict task functions share.

    Keys the pool itself maintains:

    * ``"shared"`` — segment key → attached :class:`SharedRows`;
    * everything else belongs to the client (the store builder keeps its
      open store handle, partition cache, alphabet, masks, and exception
      index cache here — state that makes fork-once pay off).
    """
    return _WORKER


def _worker_init(initializer, initargs) -> None:
    # Forked workers inherit an enabled tracemalloc (or other tracing)
    # from the parent, yet their traces are per-process and unreadable
    # from it — pure overhead on every allocation.  Drop it.
    import tracemalloc

    if tracemalloc.is_tracing():
        tracemalloc.stop()
    _WORKER.clear()
    _WORKER["shared"] = {}
    if initializer is not None:
        initializer(*initargs)


def _run_timed(func: Callable, args: tuple) -> tuple[float, object]:
    started = time.perf_counter()
    result = func(*args)
    return time.perf_counter() - started, result


def _task_ping() -> bool:
    return True


def _task_attach(key: object, name: str) -> int:
    shared = _WORKER["shared"]
    if key not in shared:
        shared[key] = SharedRows.attach(name)
    return shared[key].nbytes


def _task_detach(key: object) -> bool:
    rows = _WORKER["shared"].pop(key, None)
    if rows is not None:
        rows.close()
    # Derived per-partition state (masks, frozenset rows, client caches)
    # lives in slots keyed ``(kind, key)`` by convention; drop them all so
    # a reused key can never serve stale data to the next build.
    for slot in [
        slot
        for slot in _WORKER
        if isinstance(slot, tuple) and len(slot) == 2 and slot[1] == key
    ]:
        del _WORKER[slot]
    return rows is not None


def shared_rows(key: object) -> SharedRows:
    """The attached segment registered under *key* (worker side)."""
    try:
        return _WORKER["shared"][key]
    except KeyError:
        raise StoreError(
            f"no shared row segment {key!r} attached in this worker"
        )


def cached_masks(key: object, partition: int, n_items: int) -> list[int]:
    """Per-partition item masks from a shared segment, cached per process.

    Masks depend on the alphabet size, which only grows between passes of
    one mining run; the cache keys on ``(partition, n_items)`` so a stale
    smaller-alphabet entry can never serve a later pass.
    """
    cache = _WORKER.setdefault(("masks", key), {})
    entry = cache.get(partition)
    if entry is None or len(entry) < n_items:
        entry = shared_rows(key).item_masks(partition, n_items)
        cache[partition] = entry
    return entry


def cached_setrows(key: object, partition: int) -> list[frozenset]:
    """One partition's rows as frozensets (the scan kernel's shape)."""
    cache = _WORKER.setdefault(("setrows", key), {})
    entry = cache.get(partition)
    if entry is None:
        entry = [
            frozenset(row) for row in shared_rows(key).rows(partition)
        ]
        cache[partition] = entry
    return entry


# ----------------------------------------------------------------------
# the pool
# ----------------------------------------------------------------------

class WorkerPool:
    """A persistent, fork-once pool of ``jobs`` addressable worker slots.

    Args:
        jobs: Worker slots (``0`` resolves to ``cpu_count - 1``).
        initializer: Optional module-level callable run once in each
            worker after the pool's own setup (the store builder passes
            its store-opening initializer here).
        initargs: Arguments for *initializer*.

    Each slot is a single-worker :class:`ProcessPoolExecutor`, so
    :meth:`submit` can *route* work — partition ``p`` always lands on
    slot ``p % jobs`` and per-process caches stay hot across passes.
    Workers fork lazily on :meth:`start` (or first use) and live until
    :meth:`close`, however many builds run through the pool in between.

    Thread-unsafe by design: one coordinator drives one pool.
    """

    def __init__(
        self,
        jobs: int,
        initializer: Callable | None = None,
        initargs: tuple = (),
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self._initializer = initializer
        self._initargs = initargs
        self._slots: list[ProcessPoolExecutor] | None = None
        self._segments: dict[object, SharedRows] = {}
        self._stats_lock = threading.Lock()
        self.stats = PoolStats(jobs=self.jobs)

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "WorkerPool":
        """Fork the workers now (idempotent); returns self for chaining."""
        if self._slots is not None:
            return self
        started = time.perf_counter()
        try:
            context = get_context("fork")
        except ValueError:  # pragma: no cover - non-Unix fallback
            context = get_context()
        self._slots = [
            ProcessPoolExecutor(
                max_workers=1,
                mp_context=context,
                initializer=_worker_init,
                initargs=(self._initializer, self._initargs),
            )
            for _ in range(self.jobs)
        ]
        # Execute one ping per slot so the fork + initializer cost lands
        # here, visibly, instead of inside the first pass's timings.
        for future in [self.submit(s, _task_ping) for s in range(self.jobs)]:
            future.result()
        self.stats.spawn_count += self.jobs
        self.stats.spawn_seconds += time.perf_counter() - started
        return self

    @property
    def started(self) -> bool:
        return self._slots is not None

    def close(self) -> None:
        """Shut the workers down and unlink every shared segment."""
        try:
            if self._slots is not None:
                for key in list(self._segments):
                    try:
                        self._broadcast_nowait(_task_detach, key)
                    except Exception:  # workers may already be dead
                        pass
                for slot in self._slots:
                    slot.shutdown(wait=True, cancel_futures=True)
        finally:
            self._slots = None
            for rows in self._segments.values():
                rows.close()  # owner: unlinks
            self._segments.clear()

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- task submission ------------------------------------------------
    def submit(self, slot: int, func: Callable, *args) -> Future:
        """Run ``func(*args)`` on one worker slot; returns its Future.

        The result is unwrapped transparently — callers see ``func``'s
        return value — while the in-worker execution time is folded into
        :attr:`PoolStats.worker_busy_seconds` when the future completes.
        """
        if self._slots is None:
            self.start()
        self.stats.task_batches += 1
        inner = self._slots[slot % self.jobs].submit(
            _run_timed, func, args
        )
        outer: Future = Future()

        def _done(done: Future) -> None:
            error = done.exception()
            if error is not None:
                outer.set_exception(error)
                return
            seconds, result = done.result()
            # Done callbacks fire on each slot's executor thread; the
            # accumulator needs the lock even under the GIL.
            with self._stats_lock:
                self.stats.worker_busy_seconds += seconds
            outer.set_result(result)

        inner.add_done_callback(_done)
        return outer

    def _broadcast_nowait(self, func: Callable, *args) -> list[Future]:
        return [self.submit(slot, func, *args) for slot in range(self.jobs)]

    def broadcast(self, func: Callable, *args) -> list:
        """Run ``func(*args)`` once on every worker; results by slot."""
        return [f.result() for f in self._broadcast_nowait(func, *args)]

    def map_partitions(
        self, partition_ids: Sequence[int], func: Callable, *args
    ):
        """One task per partition, affine-routed, results in input order."""
        futures = [
            self.submit(partition_id, func, partition_id, *args)
            for partition_id in partition_ids
        ]
        for future in futures:
            yield future.result()

    # -- shared memory --------------------------------------------------
    def share_rows(
        self, key: object, partitions: Sequence[Sequence[array]]
    ) -> SharedRows:
        """Pack rows into shared memory and attach every worker to them.

        Replacing an existing *key* releases the old segment first.  The
        returned handle is owned by the pool — callers must not close it;
        :meth:`release_rows` or :meth:`close` will.
        """
        self.release_rows(key)
        rows = SharedRows.pack(partitions)
        self._segments[key] = rows
        self.stats.shm_segments += 1
        self.stats.shm_bytes += rows.nbytes
        self.broadcast(_task_attach, key, rows.name)
        return rows

    def release_rows(self, key: object) -> None:
        """Detach workers from *key*'s segment and unlink it."""
        rows = self._segments.pop(key, None)
        if rows is None:
            return
        if self._slots is not None:
            try:
                self.broadcast(_task_detach, key)
            except Exception:
                pass
        rows.close()

    def shared_keys(self) -> list:
        return list(self._segments)
