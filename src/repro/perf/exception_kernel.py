"""Bitmap kernel for the holistic exception pass (Lemma 4.3).

The scan implementation in :mod:`repro.core.flowgraph_exceptions` pays a
Python loop per (segment × path) pair twice over: the level-wise segment
miner subset-tests every candidate against every transaction, and the
exception pass re-walks every weighted path per frequent segment to count
conditional outcomes.  Both are counting problems over the *same* small
universe — the cell's deduplicated ``(path, weight)`` multiset — which is
exactly the shape the PR 2 bitmap kernel (:mod:`repro.perf.bitmap`) solves
with big-int tid-sets.

:class:`CellExceptionIndex` indexes a cell once.  Bit *t* of every mask
refers to the *t*-th distinct path; multiplicities are grouped into
per-weight class masks, so every count is an AND followed by a weighted
popcount (:meth:`CellExceptionIndex.count`: one
``weight * bit_count()`` term per distinct multiplicity, collapsing to a
single term when all weights are equal).  Four mask families cover the
whole pass:

* **exact stage constraints** ``(location prefix, duration)`` — the
  Apriori alphabet, interned to dense ids with the PR 2
  :class:`~repro.perf.interning.ItemInterner` and packed with
  :func:`~repro.perf.bitmap.item_masks`;
* **location prefixes** — what a ``*``-duration constraint matches;
* **per-(depth, next location) / per-(depth, duration) outcomes** — the
  conditional counts of transition/duration exceptions;
* **cumulative path-length masks** — the ``TERMINATE`` outcome.

:func:`mine_segments_bitmap` reruns the level-wise miner on tid-sets: a
candidate is a frequent segment extended by one frequent 1-constraint
whose location prefix strictly extends the chain, and its mask is the
parent segment's mask AND the appended constraint's mask (memoised along
the lattice), which deletes the candidates × transactions subset-check
loop.  Candidates the scan miner's full Apriori subset prune would have
dropped are supersets of infrequent segments, so they fail the support
threshold here and the mined dictionaries agree exactly.  The mined masks
are then reused verbatim by :func:`mine_exceptions_bitmap`, where each
conditional count in the transition/duration pass is one more
AND+popcount.

Parity with the scan kernel is exact and non-negotiable: supports and
conditional counts are identical integers (same candidate universe, same
thresholds via ``resolve_min_support``), so the
derived float distributions, deviations, and the canonically-sorted
exception lists are identical — and serialised cubes stay byte-identical
(property-tested in ``tests/test_exception_kernel.py``).

Indexes are shared across cells through an optional cache keyed by the
path-multiset fingerprint (:func:`cell_index`): lattice cells that roll up
to identical multisets — common near the apex — reuse one index, its mined
segment masks, and (when segments are mined locally) whole cached
exception lists.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.aggregation import DURATION_ANY_LABEL, WeightedPath
from repro.core.flowgraph import TERMINATE, FlowGraph
from repro.core.flowgraph_exceptions import (
    FlowException,
    Segment,
    SegmentConstraint,
    exception_sort_key,
    resolve_min_support,
)
from repro.perf.bitmap import item_masks
from repro.perf.interning import ItemInterner

__all__ = [
    "CellExceptionIndex",
    "cell_index",
    "mine_segments_bitmap",
    "mine_exceptions_bitmap",
]

class CellExceptionIndex:
    """One cell's deduplicated path multiset as big-int tid bitmaps.

    Built once per distinct multiset; every question the exception pass
    asks — segment support, conditional transition counts, conditional
    duration counts — becomes an AND of masks plus a weighted popcount.

    Attributes:
        interner: Exact stage constraint → dense id (the Apriori alphabet).
        exact: Per interned constraint id, the tid mask of paths
            satisfying it (``item_masks`` layout).
        prefixes: Location prefix → tid mask of paths whose own location
            chain starts with it — what a ``*``-duration constraint tests.
        transitions: Stage depth → {next location → tid mask of paths
            whose stage at that depth is the location}.
        durations: Stage depth → {duration label → tid mask of paths with
            that label at the depth}.
        weights: Per tid, the path's multiplicity.  Counting never walks
            this array — paths are grouped by multiplicity into per-weight
            class masks, so a weighted popcount is a handful of
            ``weight * (mask & class).bit_count()`` terms.
        total: Sum of all weights (the cell's path count).
        mining_cache: ``(min_support, max_length)`` → mined
            ``(segments, masks)`` pair (see :func:`mine_segments_bitmap`).
        result_cache: ``(min_support, min_deviation, max_length)`` → the
            finished exception tuple, for locally-mined runs.
    """

    __slots__ = (
        "interner",
        "exact",
        "prefixes",
        "transitions",
        "durations",
        "weights",
        "total",
        "_uniform",
        "_classes",
        "_terminate",
        "_star_mixed",
        "mining_cache",
        "result_cache",
    )

    def __init__(self, weighted: Sequence[WeightedPath]) -> None:
        interner = ItemInterner()
        rows: list[list[int]] = []
        prefixes: dict[tuple[str, ...], int] = {}
        transitions: dict[int, dict[str, int]] = {}
        durations: dict[int, dict[str, int]] = {}
        lengths: dict[int, int] = {}
        weights: list[int] = []
        classes: dict[int, int] = {}
        max_len = 0
        bit = 1
        for path, weight in weighted:
            weights.append(weight)
            classes[weight] = classes.get(weight, 0) | bit
            row: list[int] = []
            prefix: tuple[str, ...] = ()
            for depth, (location, duration) in enumerate(path):
                prefix += (location,)
                row.append(interner.intern((prefix, duration)))
                prefixes[prefix] = prefixes.get(prefix, 0) | bit
                at_depth = transitions.setdefault(depth, {})
                at_depth[location] = at_depth.get(location, 0) | bit
                labels = durations.setdefault(depth, {})
                labels[duration] = labels.get(duration, 0) | bit
            rows.append(row)
            n = len(path)
            lengths[n] = lengths.get(n, 0) | bit
            if n > max_len:
                max_len = n
            bit <<= 1
        # terminate[d] = paths of length <= d: a path "terminates at" the
        # node of depth d exactly when it has no stage at index d.
        terminate: list[int] = []
        cumulative = 0
        for depth in range(max_len + 1):
            cumulative |= lengths.get(depth, 0)
            terminate.append(cumulative)
        self.interner = interner
        self.exact = item_masks(rows, len(interner))
        self.prefixes = prefixes
        self.transitions = transitions
        self.durations = durations
        self.weights = weights
        self.total = sum(weights)
        self._uniform = next(iter(classes)) if len(classes) == 1 else (
            1 if not classes else None
        )
        self._classes = list(classes.items())
        self._terminate = terminate
        # The segment miners count a "*"-duration stage as an exact item,
        # but the exception pass treats the constraint as a wildcard
        # (``_satisfies``).  The two agree unless the multiset mixes "*"
        # with concrete durations at the same prefix — flag that case so
        # the pass knows when a mined mask can't stand in for the
        # wildcard one.
        self._star_mixed = any(
            item[1] == DURATION_ANY_LABEL
            and self.exact[item_id] != prefixes[item[0]]
            for item_id, item in enumerate(interner.items)
        )
        self.mining_cache: dict = {}
        self.result_cache: dict = {}

    # ------------------------------------------------------------------
    # counting
    # ------------------------------------------------------------------
    def count(self, mask: int) -> int:
        """Weighted popcount: total multiplicity of the mask's paths."""
        if not mask:
            return 0
        uniform = self._uniform
        if uniform is not None:
            return uniform * mask.bit_count()
        total = 0
        for weight, class_mask in self._classes:
            hit = mask & class_mask
            if hit:
                total += weight * hit.bit_count()
        return total

    def terminate_mask(self, depth: int) -> int:
        """Tid mask of paths with no stage at index *depth*."""
        terminate = self._terminate
        return terminate[depth] if depth < len(terminate) else terminate[-1]

    def constraint_mask(self, constraint: SegmentConstraint) -> int:
        """Tid mask of paths satisfying one stage constraint.

        Mirrors ``_satisfies`` exactly: a ``*`` duration matches any label
        at the stage (the location-prefix mask), anything else needs the
        exact ``(prefix, duration)`` stage, and a constraint deeper than
        the path never matches (such paths simply carry no bit).
        """
        prefix, duration = constraint
        if duration == DURATION_ANY_LABEL:
            return self.prefixes.get(prefix, 0)
        interner = self.interner
        if constraint in interner:
            return self.exact[interner.id_of(constraint)]
        return 0

    def segment_mask(self, segment: Segment) -> int:
        """Tid mask of paths satisfying every constraint of *segment*."""
        mask = self.constraint_mask(segment[0])
        for constraint in segment[1:]:
            if not mask:
                break
            mask &= self.constraint_mask(constraint)
        return mask


def cell_index(
    weighted: Sequence[WeightedPath], cache: dict | None = None
) -> CellExceptionIndex:
    """The cell's index, shared via *cache* by path-multiset fingerprint.

    The fingerprint is the frozenset of ``(path, weight)`` pairs: cells
    store each distinct path once (the PR 3 weighted dedupe), so the
    frozenset determines the multiset exactly, and every count the pass
    derives is invariant to pair order — lattice cells that roll up to
    identical multisets share one index, its mined segment masks, and its
    cached exception lists.  Inputs that *do* repeat a pair (legal for the
    public ``mine_exceptions`` entry points) would collapse under the
    fingerprint, so they bypass the cache.
    """
    if cache is None:
        return CellExceptionIndex(weighted)
    key = frozenset(weighted)
    if len(key) != len(weighted):
        return CellExceptionIndex(weighted)
    index = cache.get(key)
    if index is None:
        index = CellExceptionIndex(weighted)
        cache[key] = index
    return index


def mine_segments_bitmap(
    index: CellExceptionIndex,
    min_support: float,
    max_length: int = 4,
) -> tuple[dict[Segment, int], dict[Segment, int]]:
    """Bitmap twin of ``mine_frequent_segments_weighted`` over one index.

    Same thresholds, same frequent segments, but both candidate generation
    and counting exploit the chain structure.  A segment is a chain of
    nested prefixes with strictly increasing lengths, so every frequent
    ``(k+1)``-segment is its drop-last parent (frequent at level *k*)
    extended by one frequent constraint whose prefix strictly extends the
    chain's deepest prefix — each candidate is generated exactly once from
    its unique parent, replacing the pairwise Apriori join (tail sorting,
    nesting checks, subset probes) with a per-prefix extension table.  A
    candidate's mask is its parent's memoised mask AND the appended
    constraint's exact mask; candidates the full subset prune would have
    dropped simply fail the ≥ δ count (any superset of an infrequent set
    is infrequent), so the mined result is identical to the scan miner's.

    Returns:
        ``(segment → support, segment → tid mask)``; the masks cover every
        frequent segment so the exception pass reuses them directly, and
        the segments are already in canonical (prefix-length) order.
    """
    cache_key = (min_support, max_length)
    cached = index.mining_cache.get(cache_key)
    if cached is not None:
        return cached
    threshold = resolve_min_support(min_support, index.total)
    exact = index.exact
    # Inline the weighted popcount (see ``CellExceptionIndex.count``):
    # the candidate loops below are the hottest counting site in the
    # kernel, and a per-candidate method call costs as much as the AND.
    uniform = index._uniform
    classes = index._classes
    result: dict[Segment, int] = {}
    masks: dict[Segment, int] = {}
    frequent_items: list[tuple[SegmentConstraint, int]] = []
    for item_id, item in enumerate(index.interner.items):
        mask = exact[item_id]
        if uniform is not None:
            support = uniform * mask.bit_count()
        else:
            support = 0
            for weight, class_mask in classes:
                hit = mask & class_mask
                if hit:
                    support += weight * hit.bit_count()
        if support >= threshold:
            segment = (item,)
            result[segment] = support
            masks[segment] = mask
            frequent_items.append((item, item_id))
    # extensions[p] = frequent constraints whose prefix strictly extends p.
    extensions: dict[tuple[str, ...], list[tuple[SegmentConstraint, int]]] = {}
    for item, item_id in frequent_items:
        prefix = item[0]
        for cut in range(1, len(prefix)):
            extensions.setdefault(prefix[:cut], []).append((item, item_id))
    frontier: list[Segment] = list(result)
    length = 1
    while frontier and length < max_length:
        next_frontier: list[Segment] = []
        for segment in frontier:
            grow = extensions.get(segment[-1][0])
            if not grow:
                continue
            segment_mask = masks[segment]
            for item, item_id in grow:
                mask = segment_mask & exact[item_id]
                if not mask:
                    continue
                if uniform is not None:
                    support = uniform * mask.bit_count()
                else:
                    support = 0
                    for weight, class_mask in classes:
                        hit = mask & class_mask
                        if hit:
                            support += weight * hit.bit_count()
                if support >= threshold:
                    candidate = segment + (item,)
                    result[candidate] = support
                    masks[candidate] = mask
                    next_frontier.append(candidate)
        frontier = next_frontier
        length += 1
    index.mining_cache[cache_key] = (result, masks)
    return result, masks


def mine_exceptions_bitmap(
    graph: FlowGraph,
    weighted: Sequence[WeightedPath],
    min_support: float,
    min_deviation: float,
    segments: Iterable[Segment] | None = None,
    max_segment_length: int = 4,
    index_cache: dict | None = None,
) -> list[FlowException]:
    """``mine_exceptions_weighted``'s body under ``kernel="bitmap"``.

    Semantics, arguments, and output are exactly the scan kernel's —
    including attaching the sorted list to ``graph.exceptions``.  With an
    *index_cache* and locally-mined segments, the finished exception list
    itself is memoised per ``(δ, ε, max length)``: the exceptions are a
    pure function of the path multiset (the graph's distributions are
    derived from the same multiset), so cells sharing a fingerprint share
    the result outright.
    """
    index = cell_index(weighted, index_cache)
    result_key = None
    if segments is None and index_cache is not None:
        result_key = (min_support, min_deviation, max_segment_length)
        cached = index.result_cache.get(result_key)
        if cached is not None:
            exceptions = list(cached)
            graph.exceptions = exceptions
            return exceptions
    threshold = resolve_min_support(min_support, index.total)
    local = False
    supports: dict[Segment, int] = {}
    masks: dict[Segment, int] = {}
    if segments is None:
        supports, masks = mine_segments_bitmap(
            index, min_support, max_length=max_segment_length
        )
        segments = supports
        local = True
    count = index.count
    # When every path has the same multiplicity, a weighted popcount is
    # just ``uniform * bit_count()`` — inline it in the hot loops to skip
    # the method dispatch on every AND.
    uniform = index._uniform
    star_mixed = index._star_mixed
    exceptions: list[FlowException] = []
    #: deepest prefix -> per-node invariants, or None for absent nodes.
    node_cache: dict[tuple[str, ...], tuple | None] = {}
    #: (deepest prefix, tid mask) -> probe templates.  Segments that pin
    #: the same node with the same satisfying path set produce the same
    #: supports, deviations, and conditionals — only their ``condition``
    #: differs — and duplicate probes dominate dense lattices, so the
    #: counting work is done once per distinct (node, mask) pair.
    probe_cache: dict[tuple[tuple[str, ...], int], list] = {}
    for segment in segments:
        if not segment:
            continue
        if local:
            # Mined segments are already canonical (sorted by prefix
            # length) with known ≥-threshold supports and memoised masks.
            ordered = segment
        else:
            ordered = tuple(sorted(segment, key=lambda c: len(c[0])))
        deepest_prefix = ordered[-1][0]
        at_node = node_cache.get(deepest_prefix, _MISSING)
        if at_node is _MISSING:
            at_node = _node_invariants(graph, index, deepest_prefix)
            node_cache[deepest_prefix] = at_node
        if at_node is None:
            continue  # the graph has no such node
        if local:
            if star_mixed and any(
                duration == DURATION_ANY_LABEL for _, duration in ordered
            ):
                # The mined mask counted "*" as an exact stage; the pass
                # treats it as a wildcard.  The wildcard mask is a
                # superset of the exact one, so the segment stays
                # frequent — just recount through the prefix masks.
                mask = index.segment_mask(ordered)
                support = count(mask)
            else:
                mask = masks[ordered]
                support = supports[ordered]
        else:
            mask = index.segment_mask(ordered)
            support = count(mask)
            if support < threshold:
                continue
        probe_key = (deepest_prefix, mask)
        templates = probe_cache.get(probe_key)
        if templates is None:
            templates = _probe_node(
                deepest_prefix, at_node, mask, support, threshold,
                uniform, count, min_deviation,
            )
            probe_cache[probe_key] = templates
        for prefix, kind, probe_support, baseline, conditional, dev in templates:
            exceptions.append(
                FlowException(
                    node_prefix=prefix,
                    condition=ordered,
                    kind=kind,
                    support=probe_support,
                    baseline=baseline,
                    conditional=conditional,
                    deviation=dev,
                )
            )
    exceptions.sort(key=exception_sort_key)
    if result_key is not None:
        index.result_cache[result_key] = tuple(exceptions)
    graph.exceptions = exceptions
    return exceptions


_MISSING = object()


def _probe_node(
    node_prefix: tuple[str, ...],
    at_node: tuple,
    mask: int,
    support: int,
    threshold: int,
    uniform: int | None,
    count,
    min_deviation: float,
) -> list[tuple]:
    """All exceptions one (node, mask) pair yields, minus the condition.

    Returns ``(node_prefix, kind, support, baseline, conditional,
    deviation)`` templates — everything a :class:`FlowException` needs
    except the triggering segment, which the caller stamps on.  Cached per
    ``(deepest prefix, mask)``: distinct segments routinely select the
    same path set at the same node, and the probe is a pure function of
    that pair.
    """
    (_, transition_baseline, transition_items, ended_mask,
     label_items, children) = at_node
    templates: list[tuple] = []

    # --- transition exception at the deepest node ----------------------
    counts: dict[str, int] = {}
    if uniform is not None:
        for location, location_mask in transition_items:
            hits = mask & location_mask
            if hits:
                counts[location] = uniform * hits.bit_count()
        ended = mask & ended_mask
        if ended:
            counts[TERMINATE] = uniform * ended.bit_count()
    else:
        for location, location_mask in transition_items:
            hits = mask & location_mask
            if hits:
                counts[location] = count(hits)
        ended = mask & ended_mask
        if ended:
            counts[TERMINATE] = count(ended)
    # Every masked path either continues to some location at this depth
    # or terminates here, so the counts partition the mask and sum
    # exactly to the segment's support.
    deviation, conditional = _deviate(
        transition_baseline, counts, support, min_deviation
    )
    if conditional is not None:
        templates.append((
            node_prefix, "transition", support,
            transition_baseline, conditional, deviation,
        ))

    # --- duration exceptions at the node's children --------------------
    for location, location_mask, child_prefix, child_baseline in children:
        child_mask = mask & location_mask
        if not child_mask:
            continue
        child_support = (
            uniform * child_mask.bit_count()
            if uniform is not None
            else count(child_mask)
        )
        if child_support < threshold:
            continue
        counts = {}
        if uniform is not None:
            for label, label_mask in label_items:
                hits = child_mask & label_mask
                if hits:
                    counts[label] = uniform * hits.bit_count()
        else:
            for label, label_mask in label_items:
                hits = child_mask & label_mask
                if hits:
                    counts[label] = count(hits)
        # Every path through the child has exactly one duration label
        # there, so the counts sum to the child's support.
        deviation, conditional = _deviate(
            child_baseline, counts, child_support, min_deviation
        )
        if conditional is not None:
            templates.append((
                child_prefix, "duration", child_support,
                child_baseline, conditional, deviation,
            ))
    return templates


def _node_invariants(
    graph: FlowGraph, index: CellExceptionIndex, prefix: tuple[str, ...]
) -> tuple | None:
    """Everything about one deepest node that is segment-independent.

    Many segments share a deepest node; its baselines, outcome mask lists,
    and child table only depend on the node, so they are computed once per
    cell and reused across those segments.  Returns ``None`` when the
    graph has no node at *prefix*.
    """
    if not graph.has_node(prefix):
        return None
    node = graph.node(prefix)
    depth = len(prefix)
    at_depth = index.transitions.get(depth, {})
    children = [
        (
            location,
            at_depth.get(location, 0),
            child.prefix,
            child.duration_distribution(),
        )
        for location, child in node.children.items()
    ]
    return (
        node,
        node.transition_distribution(),
        list(at_depth.items()),
        index.terminate_mask(depth),
        list(index.durations.get(depth, {}).items()),
        children,
    )


def _deviate(
    baseline: dict[str, float],
    counts: dict[str, int],
    total: int,
    min_deviation: float,
) -> tuple[float, dict[str, float] | None]:
    """Fused ``_normalise`` + ``_max_deviation`` with a lazy conditional.

    Returns ``(deviation, conditional)`` where *conditional* is the
    normalised distribution when ``deviation > min_deviation`` and
    ``None`` otherwise — most probes don't deviate, so the float dict is
    only materialised for actual exceptions.  *total* is the caller's
    already-counted mask support (the counts partition the mask, so it
    equals their sum), and the divisions are the same ``n / total`` the
    scan kernel performs, so emitted values are bit-identical.
    """
    deviation = 0.0
    if total == 0:
        for probability in baseline.values():
            magnitude = abs(probability)
            if magnitude > deviation:
                deviation = magnitude
        if deviation > min_deviation:
            return deviation, {}
        return deviation, None
    get = baseline.get
    for key, n in counts.items():
        magnitude = abs(get(key, 0.0) - n / total)
        if magnitude > deviation:
            deviation = magnitude
    if len(counts) != len(baseline):
        # The masked paths are a subset of the cell's paths, so every
        # counted outcome appears in the baseline: equal sizes mean equal
        # key sets and the absent-outcome sweep has nothing to add.
        for key, probability in baseline.items():
            if key not in counts:
                magnitude = abs(probability)
                if magnitude > deviation:
                    deviation = magnitude
    if deviation > min_deviation:
        return deviation, {key: n / total for key, n in counts.items()}
    return deviation, None
