"""Aggregate-once measure engine: lattice roll-up materialisation.

The direct builder (:meth:`repro.core.flowcube.FlowCube.build` with
``engine="direct"``) re-aggregates every record and rebuilds every cell's
flowgraph once per (item level × path level) pair.  But an ancestor cell's
path multiset is exactly the disjoint union of its children's — the classic
algebraic roll-up of Gray et al.'s Data Cube, which the paper exploits in
§4.2 by splitting the measure into an algebraic flowgraph part (Lemma 4.2)
and a holistic exception part (Lemma 4.3).  This engine does the split end
to end:

1. **Scan once** (:func:`scan_records`): one pass over the records computes
   cell membership and weighted base paths for the *root* item levels only.
   Each record's path is aggregated exactly once per path level — shared
   across root levels — and identical aggregated paths dedupe into
   ``(path, weight)`` pairs as they are counted.
2. **Derive ancestors** (:func:`derive_levels`): every other requested item
   level's per-cell data is rolled up from an already-materialised strict
   descendant chosen by :func:`derivation_plan` — record ids concatenate,
   path weights add, and iceberg-surviving cells get flowgraphs either by
   :meth:`FlowGraph.merge` of their children's graphs or by expanding
   their merged weighted multiset (equivalent by Lemma 4.2; sub-iceberg
   cells never pay for a graph).  No record is touched again.
3. **Assemble** (:func:`assemble_cuboids`): iceberg filtering, cell
   construction, and the per-cell holistic exception pass, in exactly the
   direct builder's cuboid and cell order.

Parity with the direct engine is exact: counts are integers, distributions
are ratios of identical integers, and exceptions are re-mined per cell from
the weighted paths then canonically sorted, so serialised cubes are
byte-identical across engines (asserted by the property tests).  The
out-of-core builder (:func:`repro.store.builder.build_cube`) reuses
:func:`scan_records` per partition and :func:`merge_scan` to fold partials
in partition order, which reproduces the single-scan insertion orders
exactly — so in-memory, serial, and ``jobs=N`` roll-up builds all agree.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass
from time import perf_counter

from repro.core.aggregation import AggregatedPath, aggregate_path
from repro.core.flowcube import Cell, CellKey, Cuboid
from repro.core.flowgraph import FlowGraph
from repro.core.flowgraph_exceptions import (
    EXCEPTION_KERNELS,
    Segment,
    resolve_min_support,
    serial_exception_pass,
)
from repro.core.lattice import ItemLattice, ItemLevel, PathLattice, PathLevel
from repro.errors import CubeError

__all__ = [
    "ENGINES",
    "LevelData",
    "derivation_plan",
    "scan_records",
    "merge_scan",
    "derive_levels",
    "prune_to_iceberg",
    "assemble_cuboids",
    "build_rollup",
]

#: Measure engines accepted by ``FlowCube.build`` / ``build_cube``.
ENGINES = ("rollup", "direct")

#: One cell's weighted path multiset: distinct path -> multiplicity,
#: insertion-ordered (first-seen record order for root levels).
WeightedCell = dict[AggregatedPath, int]


@dataclass
class LevelData:
    """Everything the engine holds for one item level.

    ``groups`` and ``weighted`` carry *all* keys — including sub-iceberg
    ones — because an ancestor's cells must merge *every* child cell to
    conserve weight.  ``graphs`` is the one threshold-aware structure:
    flowgraphs cost real work to build and are only ever read for cells
    that pass the iceberg threshold, so they exist only for those keys —
    an ancestor whose children carry graphs merges them, any other
    materialised cell expands its graph from its weighted multiset.  (On
    the bench workload most keys sit below the threshold; building their
    graphs anyway made the roll-up engine *slower* than the direct
    builder.)

    Attributes:
        groups: Cell key -> member record ids.
        weighted: Per path level: cell key -> weighted path multiset.
        graphs: Per path level: cell key -> the cell's flowgraph, for
            keys meeting the iceberg threshold only.
    """

    groups: dict[CellKey, list[int]]
    weighted: list[dict[CellKey, WeightedCell]]
    graphs: list[dict[CellKey, FlowGraph]]


def derivation_plan(
    levels: Iterable[ItemLevel],
) -> list[tuple[ItemLevel, ItemLevel | None]]:
    """Order the requested item levels for bottom-up derivation.

    Returns ``(level, source)`` pairs, deepest levels first.  ``source`` is
    the shallowest already-planned strict descendant — the cheapest level
    whose cells partition this one's records — or ``None`` for a *root*
    level that must be materialised from the records themselves.  With the
    full lattice requested only the base level is a root; arbitrary subsets
    (partial materialisation plans) degrade gracefully to multiple roots.
    """
    ordered = sorted(
        dict.fromkeys(levels), key=lambda lv: (-sum(lv.levels), lv.levels)
    )
    plan: list[tuple[ItemLevel, ItemLevel | None]] = []
    placed: list[ItemLevel] = []
    for level in ordered:
        descendants = [
            p for p in placed if p != level and level.is_higher_or_equal(p)
        ]
        source = (
            min(descendants, key=lambda lv: (sum(lv.levels), lv.levels))
            if descendants
            else None
        )
        plan.append((level, source))
        placed.append(level)
    return plan


def scan_records(
    records: Iterable,
    path_lattice: PathLattice,
    root_levels: Sequence[ItemLevel],
    hierarchies: Sequence,
) -> tuple[list[dict[CellKey, list[int]]], list[list[dict[CellKey, WeightedCell]]]]:
    """One pass over *records*: membership and weighted paths per root level.

    Each record's path is aggregated exactly once per path level — via this
    module's :func:`aggregate_path` binding, which the tests monkeypatch to
    assert the aggregate-once guarantee — and the result is shared across
    all root levels.  Cell keys are memoised per distinct ``record.dims``.

    Returns:
        ``(groups, weighted)`` lists indexed like *root_levels*: per-level
        record-id groups and, per path level, the weighted path multisets.
    """
    path_levels = tuple(path_lattice)
    groups: list[dict[CellKey, list[int]]] = [{} for _ in root_levels]
    weighted: list[list[dict[CellKey, WeightedCell]]] = [
        [{} for _ in path_levels] for _ in root_levels
    ]
    keys_cache: dict[tuple, list[CellKey]] = {}
    for record in records:
        keys = keys_cache.get(record.dims)
        if keys is None:
            keys = [
                tuple(
                    hierarchy.ancestor_at_level(value, target)
                    for hierarchy, value, target in zip(
                        hierarchies, record.dims, root_level
                    )
                )
                for root_level in root_levels
            ]
            keys_cache[record.dims] = keys
        aggregated = [
            aggregate_path(record.path, path_level)
            for path_level in path_levels
        ]
        for index, key in enumerate(keys):
            groups[index].setdefault(key, []).append(record.record_id)
            per_level = weighted[index]
            for level_id, path in enumerate(aggregated):
                cell = per_level[level_id].setdefault(key, {})
                cell[path] = cell.get(path, 0) + 1
    return groups, weighted


def merge_scan(
    groups: list[dict[CellKey, list[int]]],
    weighted: list[list[dict[CellKey, WeightedCell]]],
    part_groups: list[dict[CellKey, list[int]]],
    part_weighted: list[list[dict[CellKey, WeightedCell]]],
) -> None:
    """Fold one partition's :func:`scan_records` partial into the totals.

    Partitions preserve record order, so merging partials in partition
    order reproduces the single-scan first-seen key orders, record-id
    orders, and path insertion orders exactly — the out-of-core roll-up
    build is therefore bit-identical to the in-memory one.
    """
    for merged, part in zip(groups, part_groups):
        for key, ids in part.items():
            merged.setdefault(key, []).extend(ids)
    for merged_levels, part_levels in zip(weighted, part_weighted):
        for merged_cells, part_cells in zip(merged_levels, part_levels):
            for key, paths in part_cells.items():
                cell = merged_cells.setdefault(key, {})
                for path, weight in paths.items():
                    cell[path] = cell.get(path, 0) + weight


def _cell_graph(paths: WeightedCell) -> FlowGraph:
    """One cell's flowgraph, expanded from its weighted path multiset."""
    graph = FlowGraph()
    for path, weight in paths.items():
        graph.add_path(path, weight)
    return graph


def _root_graphs(
    groups: dict[CellKey, list[int]],
    weighted_levels: list[dict[CellKey, WeightedCell]],
    threshold: float,
) -> list[dict[CellKey, FlowGraph]]:
    """Flowgraphs for each root cell at or above the iceberg *threshold*."""
    return [
        {
            key: _cell_graph(paths)
            for key, paths in cells.items()
            if not len(groups[key]) < threshold
        }
        for cells in weighted_levels
    ]


def _derive_level(
    level: ItemLevel,
    source: LevelData,
    hierarchies: Sequence,
    n_path_levels: int,
    threshold: float,
) -> LevelData:
    """Roll *source*'s per-cell data up to the ancestor *level*.

    Every source key maps to exactly one parent key, so parent cells are
    disjoint unions of child cells: record ids concatenate, path weights
    add, and flowgraphs merge (Lemma 4.2).  Iterating source keys in their
    first-seen record order makes each derived dict's key order match what
    a direct record scan at *level* would have produced.

    Flowgraphs are only built for parent keys that pass the iceberg
    *threshold*.  When every child brings a stored graph the parent's is
    :meth:`FlowGraph.merge`-d from them; when some children sit below the
    threshold (and so carry no graph), the parent's graph is expanded
    from its already-merged weighted multiset instead — equivalent by
    Lemma 4.2 and cheaper than first materialising each sub-iceberg
    child's graph only to fold it away.
    """
    key_map: dict[CellKey, CellKey] = {}
    groups: dict[CellKey, list[int]] = {}
    for child_key, record_ids in source.groups.items():
        parent_key = tuple(
            hierarchy.ancestor_at_level(value, target)
            for hierarchy, value, target in zip(hierarchies, child_key, level)
        )
        key_map[child_key] = parent_key
        groups.setdefault(parent_key, []).extend(record_ids)
    alive = {
        key for key, record_ids in groups.items()
        if not len(record_ids) < threshold
    }
    weighted: list[dict[CellKey, WeightedCell]] = []
    graphs: list[dict[CellKey, FlowGraph]] = []
    for level_id in range(n_path_levels):
        cells: dict[CellKey, WeightedCell] = {}
        children: dict[CellKey, list[CellKey]] = {key: [] for key in alive}
        for child_key, paths in source.weighted[level_id].items():
            parent_key = key_map[child_key]
            cell = cells.setdefault(parent_key, {})
            for path, weight in paths.items():
                cell[path] = cell.get(path, 0) + weight
            if parent_key in alive:
                children[parent_key].append(child_key)
        source_graphs = source.graphs[level_id]
        weighted.append(cells)
        graphs.append(
            {
                key: (
                    FlowGraph().merge(
                        source_graphs[child_key] for child_key in child_keys
                    )
                    if all(ck in source_graphs for ck in child_keys)
                    else _cell_graph(cells[key])
                )
                for key, child_keys in children.items()
            }
        )
    return LevelData(groups=groups, weighted=weighted, graphs=graphs)


def derive_levels(
    plan: Sequence[tuple[ItemLevel, ItemLevel | None]],
    groups_by_root: list[dict[CellKey, list[int]]],
    weighted_by_root: list[list[dict[CellKey, WeightedCell]]],
    root_levels: Sequence[ItemLevel],
    hierarchies: Sequence,
    n_path_levels: int,
    threshold: float,
) -> dict[ItemLevel, LevelData]:
    """Materialise :class:`LevelData` for every planned level, roots first."""
    index_of_root = {level: i for i, level in enumerate(root_levels)}
    data: dict[ItemLevel, LevelData] = {}
    for level, source in plan:
        if source is None:
            i = index_of_root[level]
            data[level] = LevelData(
                groups=groups_by_root[i],
                weighted=weighted_by_root[i],
                graphs=_root_graphs(
                    groups_by_root[i], weighted_by_root[i], threshold
                ),
            )
        else:
            data[level] = _derive_level(
                level, data[source], hierarchies, n_path_levels, threshold
            )
    return data


def prune_to_iceberg(
    data: Mapping[ItemLevel, LevelData], threshold: float
) -> None:
    """Drop sub-iceberg cells from every level, in place.

    Derivation needs *all* child cells to conserve ancestor weights, but
    once every level is derived only iceberg-surviving cells are ever
    read again.  The sub-threshold tail is the bulk of the keys on
    realistic workloads, and keeping it alive through assembly makes the
    holistic exception pass measurably slower just by inflating the heap
    the cyclic GC has to traverse — so it is dropped here.  Pruning keeps
    each dict's insertion order (a subset of it), leaving assembly's cell
    order untouched.
    """
    for level_data in data.values():
        groups = {
            key: record_ids
            for key, record_ids in level_data.groups.items()
            if not len(record_ids) < threshold
        }
        level_data.groups = groups
        level_data.weighted = [
            {key: cells[key] for key in groups}
            for cells in level_data.weighted
        ]


def assemble_cuboids(
    levels: Sequence[ItemLevel],
    path_lattice: PathLattice,
    data: Mapping[ItemLevel, LevelData],
    threshold: int,
    min_support: float,
    min_deviation: float,
    compute_exceptions: bool,
    segments_by_cell: Mapping[
        tuple[ItemLevel, PathLevel, CellKey], Sequence[Segment]
    ]
    | None,
    kernel: str = "bitmap",
    exception_pass=None,
) -> Iterator[Cuboid]:
    """Yield finished cuboids in the direct builder's (item, path) order.

    Applies the iceberg threshold, builds cells from the derived weighted
    paths and flowgraphs, and runs the holistic exception pass per cuboid
    batch through *exception_pass* — a ``run(batch)`` callable over
    ``(graph, weighted, segments)`` triples (see
    :func:`~repro.core.flowgraph_exceptions.serial_exception_pass`; the
    out-of-core builder substitutes a pool-fanned runner).  Defaults to a
    fresh serial runner over *kernel*.
    """
    if exception_pass is None and compute_exceptions:
        exception_pass = serial_exception_pass(
            min_support, min_deviation, kernel=kernel
        )
    for item_level in levels:
        level_data = data[item_level]
        for level_id, path_level in enumerate(path_lattice):
            cuboid = Cuboid(item_level, path_level)
            batch = []
            for key, record_ids in level_data.groups.items():
                if len(record_ids) < threshold:
                    continue  # iceberg condition
                weighted = tuple(level_data.weighted[level_id][key].items())
                graph = level_data.graphs[level_id][key]
                cell = Cell(
                    key=key,
                    item_level=item_level,
                    path_level=path_level,
                    record_ids=tuple(sorted(record_ids)),
                    flowgraph=graph,
                    paths=weighted,
                )
                if compute_exceptions:
                    segments = None
                    if segments_by_cell is not None:
                        segments = segments_by_cell.get(
                            (item_level, path_level, key)
                        )
                    batch.append((graph, weighted, segments))
                cuboid.cells[key] = cell
            if batch:
                exception_pass(batch)
            yield cuboid


def build_rollup(
    cube_cls,
    database,
    path_lattice: PathLattice | None = None,
    item_levels: Iterable[ItemLevel] | None = None,
    min_support: float = 0.01,
    min_deviation: float = 0.1,
    compute_exceptions: bool = True,
    segments_by_cell: Mapping[
        tuple[ItemLevel, PathLevel, CellKey], Sequence[Segment]
    ]
    | None = None,
    kernel: str = "bitmap",
    stats: object | None = None,
):
    """In-memory roll-up build — ``FlowCube.build(engine="rollup")``'s body.

    Args:
        cube_cls: The :class:`~repro.core.flowcube.FlowCube` class (passed
            in to keep the import lazy on the flowcube side).
        database: The path database.
        kernel: Exception-pass kernel, ``"bitmap"`` or ``"scan"``.
        stats: Optional sink with ``add_phase(name, seconds)``; the record
            scan lands in ``aggregate``, derivation + assembly in
            ``materialize``, and the holistic pass in ``exceptions``.

    The remaining arguments mirror :meth:`FlowCube.build`.
    """
    if kernel not in EXCEPTION_KERNELS:
        raise CubeError(
            f"unknown exception kernel {kernel!r}; expected one of "
            f"{EXCEPTION_KERNELS}"
        )
    schema = database.schema
    item_lattice = ItemLattice([h.depth for h in schema.dimensions])
    if path_lattice is None:
        path_lattice = PathLattice.paper_default(schema.location)
    cube = cube_cls(
        database, item_lattice, path_lattice, min_support, min_deviation
    )
    levels = list(item_levels) if item_levels is not None else list(item_lattice)
    for item_level in levels:
        if item_level not in item_lattice:
            raise CubeError(f"item level {item_level!r} outside the lattice")
    threshold = resolve_min_support(min_support, len(database))
    hierarchies = schema.dimensions
    plan = derivation_plan(levels)
    root_levels = [level for level, source in plan if source is None]

    phase = perf_counter()
    groups_by_root, weighted_by_root = scan_records(
        database, path_lattice, root_levels, hierarchies
    )
    if stats is not None:
        stats.add_phase("aggregate", perf_counter() - phase)

    phase = perf_counter()
    data = derive_levels(
        plan, groups_by_root, weighted_by_root, root_levels, hierarchies,
        len(path_lattice), threshold,
    )
    prune_to_iceberg(data, threshold)
    del groups_by_root, weighted_by_root
    runner = (
        serial_exception_pass(min_support, min_deviation, kernel=kernel)
        if compute_exceptions
        else None
    )
    for cuboid in assemble_cuboids(
        levels, path_lattice, data, threshold, min_support, min_deviation,
        compute_exceptions, segments_by_cell, kernel=kernel,
        exception_pass=runner,
    ):
        cube._cuboids[(cuboid.item_level, cuboid.path_level)] = cuboid  # noqa: SLF001
    if stats is not None:
        exception_seconds = runner.seconds if runner is not None else 0.0
        if compute_exceptions:
            stats.add_phase("exceptions", exception_seconds)
        stats.add_phase(
            "materialize", perf_counter() - phase - exception_seconds
        )
    return cube
