"""Dense integer interning of the mining alphabet.

The miners' hot loops spend most of their time hashing items: every
tid-list insert, candidate index lookup, and subset test re-hashes a
frozen dataclass whose hash walks a tuple of fields.  Interning pays that
cost exactly once per distinct item: an :class:`ItemInterner` maps each
item to a dense ``int`` id, transactions become sorted ``array('i')``
rows (:class:`InternedTransactions`), and everything downstream — tid
bitmaps, candidate tuples, pre-count tables — operates on machine ints.

Ids are dense (``0 .. n-1``), so per-item state lives in flat lists
indexed by id rather than dicts keyed by item.  When a sort key is
supplied the alphabet can be interned in key order, making id order agree
with the miner's canonical item order; the interner also records each
id's key so callers never depend on that alignment.

The interner is generic over hashable items — the Shared miner interns
:data:`~repro.encoding.transactions.Item` values, but
:func:`~repro.mining.apriori.apriori`'s bitmap counting mode interns
whatever items its transactions carry.
"""

from __future__ import annotations

from array import array
from collections.abc import Callable, Hashable, Iterable, Sequence

__all__ = ["ItemInterner", "InternedTransactions"]

ItemT = Hashable


class ItemInterner:
    """Bijection between items and dense integer ids.

    Args:
        sort_key: Optional canonical item order.  When given, each
            interned id's key is cached in :attr:`sort_keys`, so id-space
            code can sort candidates exactly the way the item-space code
            does without re-deriving keys.

    Attributes:
        items: Id → item (dense, append-only).
        sort_keys: Id → ``sort_key(item)``; empty when no key was given.
    """

    def __init__(self, sort_key: Callable[[ItemT], object] | None = None) -> None:
        self._ids: dict[ItemT, int] = {}
        self._sort_key = sort_key
        self.items: list[ItemT] = []
        self.sort_keys: list[object] = []

    def __len__(self) -> int:
        return len(self.items)

    def __contains__(self, item: ItemT) -> bool:
        return item in self._ids

    def intern(self, item: ItemT) -> int:
        """Return *item*'s id, assigning the next dense id on first sight."""
        item_id = self._ids.get(item)
        if item_id is None:
            item_id = len(self.items)
            self._ids[item] = item_id
            self.items.append(item)
            if self._sort_key is not None:
                self.sort_keys.append(self._sort_key(item))
        return item_id

    def id_of(self, item: ItemT) -> int:
        """The id of an already-interned item (KeyError otherwise)."""
        return self._ids[item]

    def key_of(self, item_id: int) -> object:
        """The cached sort key of id *item_id* (needs ``sort_key``)."""
        return self.sort_keys[item_id]

    def encode(self, transaction: Iterable[ItemT]) -> array:
        """One transaction as a sorted ``array('i')`` of ids.

        Rows sort by the cached key when one was given (the canonical
        item order), by raw id otherwise.
        """
        ids = [self.intern(item) for item in transaction]
        if self._sort_key is not None:
            keys = self.sort_keys
            ids.sort(key=keys.__getitem__)
        else:
            ids.sort()
        return array("i", ids)

    def decode(self, ids: Iterable[int]) -> frozenset:
        """An id tuple back into the itemset it encodes."""
        items = self.items
        return frozenset(items[item_id] for item_id in ids)


class InternedTransactions:
    """A transaction database as interned ``array('i')`` rows.

    Attributes:
        interner: The alphabet bijection (shared with the rows).
        rows: One sorted id row per transaction, in transaction order —
            row index is the transaction id the bitmap kernel packs into
            masks.
        n_base: Alphabet size when the rows were interned.  Miners may
            later extend the interner with ids that never occur in any
            row (high-level projections); ``range(n_base)`` is always
            exactly the ids with row occurrences.
    """

    def __init__(self, interner: ItemInterner, rows: list[array]) -> None:
        self.interner = interner
        self.rows = rows
        self.n_base = len(interner)

    @classmethod
    def from_transactions(
        cls,
        transactions: Sequence[Iterable[ItemT]],
        sort_key: Callable[[ItemT], object] | None = None,
    ) -> "InternedTransactions":
        """Intern a whole database.

        With *sort_key* the alphabet is collected first and interned in
        key order, so id order coincides with the canonical item order
        (rows then sort by plain int comparison).
        """
        interner = ItemInterner(sort_key)
        if sort_key is not None:
            alphabet: set[ItemT] = set()
            for transaction in transactions:
                alphabet.update(transaction)
            for item in sorted(alphabet, key=sort_key):
                interner.intern(item)
        rows = [interner.encode(transaction) for transaction in transactions]
        return cls(interner, rows)

    def __len__(self) -> int:
        return len(self.rows)
