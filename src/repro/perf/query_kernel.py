"""Bitmap query kernel: index-first slice/dice over materialised cuboids.

The seed read path answered ``FlowCubeQuery.slice`` by iterating *every*
cell of every cuboid and testing the key predicate afterwards — over a
:class:`~repro.store.cube_store.CubeStore` that means JSON-parsing every
cell file whether or not the cell matches.  This module turns the
predicate into index arithmetic, the same big-int bitmap idiom as the
counting kernel (:mod:`repro.perf.bitmap`):

* :class:`CuboidKeyCatalog` packs one cuboid's cell *ordinals* into
  bitmaps per ``(dimension, concept)`` — bit *i* is set iff the *i*-th
  cell key holds that concept on that dimension — built from the key
  index alone, with **zero cell-file IO**;
* a slice constraint ``(dimension, wanted)`` becomes the OR of the
  concept masks over ``wanted``'s hierarchy descendant closure (a cell
  matches when its value *is* the wanted concept or a descendant of it —
  exactly the seed ``_matches`` semantics, ``"*"`` matching only
  ``"*"``), memoised per catalog;
* a conjunction of constraints is one AND over closure masks, and the
  matching cells are read off the set bits — only *those* cells are ever
  materialised.

:class:`QueryCache` is the serving-side memo: an
:class:`~repro.store.cache.LRUCache` keyed by canonicalised query tuples,
with a ``derivations`` counter for answers the roll-up planner
(:mod:`repro.query.planner`) had to merge from a descendant cuboid, and a
JSON-persistable stats snapshot so ``flowcube-store stats`` can report
serving behaviour across processes.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections.abc import Iterable, Iterator, Sequence
from contextlib import contextmanager
from pathlib import Path as FsPath
from typing import Any

try:  # POSIX advisory locking for cross-process stats merges
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.core.hierarchy import ConceptHierarchy

__all__ = [
    "CatalogPool",
    "CuboidKeyCatalog",
    "QueryCache",
    "iter_set_bits",
    "load_query_stats",
    "merge_query_stats",
]

#: A cell key as the catalog sees it: one concept per item dimension.
CellKey = tuple[str, ...]


def iter_set_bits(mask: int) -> Iterator[int]:
    """Yield the positions of *mask*'s set bits, lowest first."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class CuboidKeyCatalog:
    """Per-cuboid key index: cell ordinals as ``(dimension, concept)`` bitmaps.

    Args:
        keys: The cuboid's cell keys, in the cuboid's iteration order —
            the ordinal of a key is its position here, so iterating the
            set bits of a match mask yields cells in cuboid order.
        hierarchies: One :class:`ConceptHierarchy` per dimension (the
            schema's ``dimensions``), used for descendant closures.
        value_masks: Optional precomputed per-dimension ``{value:
            ordinal bitmap}`` mappings over exactly these *keys* —
            plain dicts, or the lazy mmap-backed
            :class:`~repro.store.binfmt.LazyMaskMap` views a binary
            cube's cell index hands out (each bitmap is decoded on
            first access, so building the catalog reads no mask
            bytes).  When given, the per-cell index pass is skipped
            entirely.  Ownership transfers to the catalog — do not
            mutate afterwards.
    """

    def __init__(
        self,
        keys: Sequence[CellKey],
        hierarchies: Sequence[ConceptHierarchy],
        value_masks: list[dict[str, int]] | None = None,
    ) -> None:
        self.keys = tuple(keys)
        self._hierarchies = tuple(hierarchies)
        n_dims = len(self._hierarchies)
        n_cells = len(self.keys)
        if value_masks is not None:
            self._value_masks = value_masks
        else:
            # Bucket each (dimension, value)'s cell ordinals first, then
            # materialise every mask with byte-level bit stores and one
            # ``int.from_bytes`` — O(cells) small-int work, where OR-ing
            # a growing big-int per key re-copies ~n_cells/64 words per
            # cell.  This is the cube-open hot path: the binary cell
            # index hands over a million keys (and their precomputed
            # masks) in milliseconds, so the fallback construction must
            # not dwarf the decode it follows.
            buckets: list[dict[str, list[int]]] = [{} for _ in range(n_dims)]
            for ordinal, key in enumerate(self.keys):
                for dim, value in enumerate(key):
                    bucket = buckets[dim].get(value)
                    if bucket is None:
                        buckets[dim][value] = [ordinal]
                    else:
                        bucket.append(ordinal)
            n_bytes = (n_cells + 7) >> 3
            masks: list[dict[str, int]] = []
            for per_dim in buckets:
                dim_masks: dict[str, int] = {}
                for value, positions in per_dim.items():
                    bits = bytearray(n_bytes)
                    for position in positions:
                        bits[position >> 3] |= 1 << (position & 7)
                    dim_masks[value] = int.from_bytes(bits, "little")
                masks.append(dim_masks)
            self._value_masks = masks
        self._all_mask = (1 << n_cells) - 1
        #: (dimension, wanted concept) -> descendant-closure mask.
        self._closure_cache: dict[tuple[int, str], int] = {}

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def all_mask(self) -> int:
        """Mask with one bit per cell (the unconstrained match)."""
        return self._all_mask

    def value_mask(self, dim: int, value: str) -> int:
        """Cells whose key holds exactly *value* on dimension *dim*."""
        return self._value_masks[dim].get(value, 0)

    def closure_mask(self, dim: int, wanted: str) -> int:
        """Cells matching the slice constraint ``(dim, wanted)``.

        The seed semantics: a cell matches when its value equals *wanted*
        or is a strict hierarchy descendant of it; a stored ``"*"``
        matches only ``wanted == "*"`` (and ``"*"``'s closure is every
        concept, so an unconstrained dimension matches everything).
        """
        cached = self._closure_cache.get((dim, wanted))
        if cached is not None:
            return cached
        per_dim = self._value_masks[dim]
        hierarchy = self._hierarchies[dim]
        mask = 0
        # Walk whichever side is smaller: a narrow closure ORs its few
        # concepts' masks; a wide one (near the apex) tests the stored
        # values against the closure instead of materialising it.
        closure = hierarchy.descendants(wanted, include_self=True)
        if len(closure) <= len(per_dim):
            for concept in closure:
                mask |= per_dim.get(concept, 0)
        else:
            # Probe by key and fetch only the members' masks: with a
            # lazy mmap-backed mask map (binary stores) this decodes
            # just the bitmaps the slice actually ANDs, instead of
            # materialising every value's mask via ``items()``.
            members = set(closure)
            for value in per_dim.keys():
                if value in members:
                    mask |= per_dim.get(value, 0)
        self._closure_cache[(dim, wanted)] = mask
        return mask

    def match_mask(self, constraints: Iterable[tuple[int, str]]) -> int:
        """AND of the closure masks — the slice/dice answer as one bitmap."""
        mask = self._all_mask
        for dim, wanted in constraints:
            mask &= self.closure_mask(dim, wanted)
            if not mask:
                break
        return mask

    def matching_keys(
        self, constraints: Iterable[tuple[int, str]]
    ) -> Iterator[CellKey]:
        """The matching cell keys, in cuboid order, via set-bit iteration."""
        keys = self.keys
        for ordinal in iter_set_bits(self.match_mask(constraints)):
            yield keys[ordinal]


class CatalogPool:
    """Shared, versioned registry of :class:`CuboidKeyCatalog` instances.

    A long-lived server answers many requests over the same cuboids;
    rebuilding the key catalog per :class:`~repro.query.api.FlowCubeQuery`
    object (or per request) would redo the same index pass.  The pool
    memoises one catalog per cuboid coordinate, keyed by the cube's
    mutation *version* and the cuboid's cell count, so a store rebuild
    naturally replaces stale entries instead of leaking them.  All
    methods are thread-safe; catalog construction happens outside the
    lock (two racing builders do redundant work, never corrupt state).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: (item level, path level) -> (version, n_cells, catalog).
        self._entries: dict[tuple, tuple[Any, int, CuboidKeyCatalog]] = {}
        self.hits = 0
        self.builds = 0

    def catalog(
        self,
        cuboid,
        hierarchies: Sequence[ConceptHierarchy],
        version: Any = 0,
    ) -> CuboidKeyCatalog:
        """The cuboid's catalog, built at most once per (version, size)."""
        coords = (cuboid.item_level, cuboid.path_level)
        n_cells = len(cuboid)
        with self._lock:
            entry = self._entries.get(coords)
            if (
                entry is not None
                and entry[0] == version
                and entry[1] == n_cells
            ):
                self.hits += 1
                return entry[2]
        keys = getattr(cuboid, "keys", None)
        if keys is None:  # in-memory Cuboid
            keys = tuple(cuboid.cells)
        catalog = CuboidKeyCatalog(
            keys, hierarchies, getattr(cuboid, "value_masks", None)
        )
        with self._lock:
            self._entries[coords] = (version, n_cells, catalog)
            self.builds += 1
        return catalog

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Reuse counters: catalogs served from the pool vs built."""
        with self._lock:
            return {
                "catalogs": len(self._entries),
                "hits": self.hits,
                "builds": self.builds,
            }


class QueryCache:
    """Memoised query answers with hit/miss/derivation counters.

    A thin serving wrapper over :class:`~repro.store.cache.LRUCache`:
    callers canonicalise their query into a hashable key (operation name,
    path-level id, sorted constraints), and the cache tracks — next to the
    LRU's own hit/miss/eviction counters — how many answers were derived
    by the roll-up planner rather than read from a materialised cuboid.

    Every operation takes an internal lock, so one cache can back
    concurrent server workers: the underlying ``OrderedDict`` recency
    moves are not safe to interleave (a racing eviction between an
    unlocked get's lookup and its refresh would raise ``KeyError``).
    """

    def __init__(self, capacity: int = 128) -> None:
        # Imported lazily: repro.perf is a dependency of the miners, and
        # importing repro.store at module level would close the cycle
        # mining -> perf -> store -> builder -> mining.
        from repro.store.cache import LRUCache

        self._lru = LRUCache(capacity)
        self._lock = threading.Lock()
        self.derivations = 0

    def get(self, key: Any, default: Any = None) -> Any:
        with self._lock:
            return self._lru.get(key, default)

    def put(self, key: Any, value: Any) -> None:
        with self._lock:
            self._lru.put(key, value)

    def note_derivation(self) -> None:
        """Count one answer the roll-up planner had to derive."""
        with self._lock:
            self.derivations += 1

    def __contains__(self, key: Any) -> bool:
        with self._lock:
            return key in self._lru

    def __len__(self) -> int:
        with self._lock:
            return len(self._lru)

    def clear(self) -> None:
        """Drop the entries; counters keep accumulating (LRU semantics)."""
        with self._lock:
            self._lru.clear()

    def stats(self) -> dict[str, float | int]:
        """LRU counters plus the planner's derivation count."""
        with self._lock:
            out = self._lru.stats()
            out["derivations"] = self.derivations
            return out


#: Filename for persisted query-cache counters inside a cube directory.
QUERY_STATS_FILENAME = "query_stats.json"

#: Sidecar lock file serialising read-modify-write merges.
QUERY_STATS_LOCKFILE = "query_stats.lock"

#: Counter keys that accumulate across processes.
_ACCUMULATING = ("hits", "misses", "evictions", "derivations")

#: Process-wide fallback when POSIX file locking is unavailable — still
#: serialises threads inside one process (the common concurrent case:
#: server workers flushing stats for the same cube directory).
_STATS_THREAD_LOCK = threading.Lock()


@contextmanager
def _stats_lock(directory: FsPath):
    """Exclusive advisory lock over a cube directory's stats file.

    ``flock`` on a sidecar file (never the stats file itself, whose inode
    is replaced on every merge) makes the load→add→rename sequence atomic
    across processes; the thread lock covers in-process concurrency and
    platforms without ``fcntl``.
    """
    with _STATS_THREAD_LOCK:
        if fcntl is None:  # pragma: no cover - non-POSIX
            yield
            return
        fd = os.open(directory / QUERY_STATS_LOCKFILE, os.O_CREAT | os.O_RDWR)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            os.close(fd)  # closing drops the flock


def load_query_stats(directory: FsPath | str) -> dict[str, float | int] | None:
    """The persisted query-cache counters of a cube directory, if any."""
    path = FsPath(directory) / QUERY_STATS_FILENAME
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


def merge_query_stats(
    directory: FsPath | str, stats: dict[str, float | int]
) -> dict[str, float | int]:
    """Fold one process's query-cache counters into the cube's persisted file.

    ``flowcube-store query`` runs one process per invocation, so its
    in-memory :class:`QueryCache` counters would vanish on exit;
    accumulating them here lets ``flowcube-store stats`` report serving
    behaviour across invocations.  Hit rate is recomputed from the merged
    totals.  Returns the merged snapshot.

    The merge is atomic under concurrency: an exclusive lock serialises
    the whole read-modify-write (so no increment is lost between racing
    workers), the new snapshot is written to a uniquely named temp file,
    and the temp is renamed over ``query_stats.json`` — a reader can
    never observe partial JSON.
    """
    directory = FsPath(directory)
    directory.mkdir(parents=True, exist_ok=True)
    with _stats_lock(directory):
        merged = load_query_stats(directory) or {}
        for key in _ACCUMULATING:
            merged[key] = int(merged.get(key, 0)) + int(stats.get(key, 0))
        merged["capacity"] = stats.get("capacity", merged.get("capacity", 0))
        merged["size"] = stats.get("size", merged.get("size", 0))
        total = merged["hits"] + merged["misses"]
        merged["hit_rate"] = merged["hits"] / total if total else 0.0
        fd, temp_name = tempfile.mkstemp(
            prefix=QUERY_STATS_FILENAME + ".", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(merged, indent=1))
            os.replace(temp_name, directory / QUERY_STATS_FILENAME)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
    return merged
