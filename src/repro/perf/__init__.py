"""Performance kernels for the mining stack.

The miners in :mod:`repro.mining` are written against rich frozen-dataclass
items (:class:`~repro.encoding.item_encoding.DimItem`,
:class:`~repro.encoding.stage_encoding.StageItem`) and Python ``set``
tid-lists — clear, but slow: every support count hashes dataclasses and
intersects sets.  This package provides the compact representations the
fast counting paths run on:

* :mod:`repro.perf.interning` — a dense integer id per distinct item,
  assigned once per encoded transaction database, turning transactions
  into sorted ``array('i')`` rows and candidate itemsets into int tuples;
* :mod:`repro.perf.bitmap` — vertical bitmap tid-sets: each item's
  tid-list packed into one Python big int, so a candidate's support is
  ``(mask_a & mask_b).bit_count()`` instead of a set intersection.

The kernels are exact: for every miner the bitmap path is kept behind a
``kernel=`` switch next to the original tid-set path, and the test suite
asserts the two return identical supports and identical mining statistics.
"""

from repro.perf.bitmap import (
    count_candidates_bitmap,
    count_candidates_masks,
    item_masks,
)
from repro.perf.interning import InternedTransactions, ItemInterner

__all__ = [
    "InternedTransactions",
    "ItemInterner",
    "count_candidates_bitmap",
    "count_candidates_masks",
    "item_masks",
]
