"""Performance kernels for the mining stack.

The miners in :mod:`repro.mining` are written against rich frozen-dataclass
items (:class:`~repro.encoding.item_encoding.DimItem`,
:class:`~repro.encoding.stage_encoding.StageItem`) and Python ``set``
tid-lists — clear, but slow: every support count hashes dataclasses and
intersects sets.  This package provides the compact representations the
fast counting paths run on:

* :mod:`repro.perf.interning` — a dense integer id per distinct item,
  assigned once per encoded transaction database, turning transactions
  into sorted ``array('i')`` rows and candidate itemsets into int tuples;
* :mod:`repro.perf.bitmap` — vertical bitmap tid-sets: each item's
  tid-list packed into one Python big int, so a candidate's support is
  ``(mask_a & mask_b).bit_count()`` instead of a set intersection;
* :mod:`repro.perf.measure_rollup` — the aggregate-once measure engine:
  one record scan materialises the base item levels' weighted paths, and
  every ancestor cuboid's cells derive by merging child cells along the
  item lattice (``FlowGraph.merge``), with the holistic exception pass
  re-run per cell;
* :mod:`repro.perf.exception_kernel` — the holistic pass itself as
  AND+popcount: one per-cell bitmap index over the deduplicated
  ``(path, weight)`` multiset answers segment supports and every
  conditional transition/duration count, with indexes shared across cells
  by path-multiset fingerprint;
* :mod:`repro.perf.query_kernel` — the read path's counterpart: per-cuboid
  key catalogs packing cell ordinals into (dimension, concept) bitmaps
  with hierarchy descendant-closure masks, so slice/dice predicates are
  AND + iterate-set-bits over the index with no cell IO for non-matching
  cells, plus the LRU query cache with hit/miss/derivation counters;
* :mod:`repro.perf.pool` — the persistent fork-once
  :class:`~repro.perf.pool.WorkerPool` the out-of-core builders run their
  ``jobs=N`` passes on, with interned transaction rows shared zero-copy
  through :class:`~repro.perf.pool.SharedRows` segments and per-pool
  spawn/shm/busy accounting in :class:`~repro.perf.pool.PoolStats`.

The kernels are exact: for every miner the bitmap path is kept behind a
``kernel=`` switch next to the original tid-set path, the measure engines
sit behind an ``engine=`` switch, and the test suite asserts identical
supports, identical statistics, and byte-identical serialised cubes.
"""

from repro.perf.bitmap import (
    count_candidates_bitmap,
    count_candidates_masks,
    item_masks,
)
from repro.perf.exception_kernel import (
    CellExceptionIndex,
    cell_index,
    mine_exceptions_bitmap,
    mine_segments_bitmap,
)
from repro.perf.interning import InternedTransactions, ItemInterner
from repro.perf.measure_rollup import ENGINES, build_rollup, derivation_plan
from repro.perf.pool import (
    PoolStats,
    SharedRows,
    WorkerPool,
    oversubscription_warning,
    resolve_jobs,
)
from repro.perf.query_kernel import (
    CatalogPool,
    CuboidKeyCatalog,
    QueryCache,
    iter_set_bits,
    load_query_stats,
    merge_query_stats,
)

__all__ = [
    "ENGINES",
    "CellExceptionIndex",
    "CatalogPool",
    "CuboidKeyCatalog",
    "InternedTransactions",
    "ItemInterner",
    "PoolStats",
    "QueryCache",
    "SharedRows",
    "WorkerPool",
    "build_rollup",
    "cell_index",
    "count_candidates_bitmap",
    "count_candidates_masks",
    "derivation_plan",
    "item_masks",
    "iter_set_bits",
    "load_query_stats",
    "merge_query_stats",
    "mine_exceptions_bitmap",
    "mine_segments_bitmap",
    "oversubscription_warning",
    "resolve_jobs",
]
