"""Bitmap tid-sets: vertical counting on Python big-int masks.

The tid-set counting strategy (:mod:`repro.mining.apriori`) stores each
itemset's transaction ids as a ``set[int]`` and counts a candidate by
intersecting its two join parents' sets.  Packing the same tid-list into
one arbitrary-precision integer — bit *t* set iff transaction *t*
contains the itemset — replaces the set intersection with a single
``&`` and the cardinality with ``int.bit_count()``, both of which run in
C over machine words.  For a database of ``n`` transactions every mask
is at most ``n`` bits, so an AND touches ``n / 64`` words regardless of
how many candidates share them.

Two counting entry points cover the two scan shapes in the system:

* :func:`count_candidates_bitmap` mirrors
  :func:`~repro.mining.apriori.count_candidates_tidset` — parent-mask
  intersection for level-wise in-memory mining;
* :func:`count_candidates_masks` mirrors
  :func:`~repro.mining.apriori.count_candidates` — a self-contained
  single pass for per-partition scans, where parents' masks from other
  partitions are unavailable: it builds the partition's item masks
  locally and k-way-ANDs each candidate.

Both produce exactly the supports of their set-based counterparts; the
test suite asserts the parity.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Iterable, Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # keep repro.perf a leaf package (no import cycle)
    from repro.mining.stats import MiningStats

__all__ = ["item_masks", "count_candidates_bitmap", "count_candidates_masks"]


def item_masks(rows: Iterable[Iterable[int]], n_items: int) -> list[int]:
    """Per-item tid bitmaps over interned rows.

    Args:
        rows: Transactions as iterables of dense item ids, in tid order.
        n_items: Size of the interned alphabet.

    Returns:
        ``masks[item_id]`` has bit *t* set iff row *t* contains the item.
    """
    masks = [0] * n_items
    bit = 1
    for row in rows:
        for item_id in row:
            masks[item_id] |= bit
        bit <<= 1
    return masks


def count_candidates_bitmap(
    candidates: Iterable[tuple],
    parent_masks: dict[tuple, int],
    stats: MiningStats | None = None,
) -> dict[tuple, int]:
    """Candidate masks by intersecting the two join parents' masks.

    The bitmap twin of
    :func:`~repro.mining.apriori.count_candidates_tidset`: each candidate
    ``prefix + (a, b)`` came from parents ``prefix + (a,)`` and
    ``prefix + (b,)``, and its tid mask is their AND.  Supports are the
    masks' ``bit_count()``.
    """
    out: dict[tuple, int] = {}
    n_candidates = 0
    for candidate in candidates:
        n_candidates += 1
        left = parent_masks[candidate[:-1]]
        right = parent_masks[candidate[:-2] + candidate[-1:]]
        out[candidate] = left & right
    if stats is not None:
        stats.scans += 1
        if n_candidates:
            length = len(next(iter(out)))
            stats.candidates_per_length[length] += n_candidates
    return out


def count_candidates_masks(
    transactions: Sequence[Iterable[Hashable]],
    candidates: Sequence[tuple],
) -> Counter:
    """Support of each candidate in one pass, via local item masks.

    Builds the transactions' per-item bitmaps (interning is implicit —
    masks are keyed by item) and counts each candidate with a k-way AND.
    Candidates absent from every transaction get no entry, matching the
    scan counter's ``Counter`` semantics; supports are identical to
    :func:`~repro.mining.apriori.count_candidates` on the same inputs.
    """
    masks: dict[Hashable, int] = {}
    bit = 1
    for transaction in transactions:
        for item in transaction:
            masks[item] = masks.get(item, 0) | bit
        bit <<= 1
    support: Counter = Counter()
    get = masks.get
    for candidate in candidates:
        mask = get(candidate[0], 0)
        if not mask:
            continue
        for item in candidate[1:]:
            mask &= get(item, 0)
            if not mask:
                break
        if mask:
            support[candidate] = mask.bit_count()
    return support
