"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`FlowCubeError` so callers can
catch the whole family with a single ``except`` clause while still letting
programming errors (``TypeError``, ``ValueError`` raised by stdlib code)
propagate untouched.
"""

from __future__ import annotations

__all__ = [
    "FlowCubeError",
    "HierarchyError",
    "UnknownConceptError",
    "LevelError",
    "PathDatabaseError",
    "EncodingError",
    "MiningError",
    "CubeError",
    "QueryError",
    "GenerationError",
    "CleaningError",
    "StoreError",
    "ServeError",
]


class FlowCubeError(Exception):
    """Base class for every error raised by the repro library."""


class HierarchyError(FlowCubeError):
    """A concept hierarchy is malformed or used inconsistently."""


class UnknownConceptError(HierarchyError):
    """A concept name was looked up that the hierarchy does not contain."""

    def __init__(self, concept: str, hierarchy_name: str = "") -> None:
        self.concept = concept
        self.hierarchy_name = hierarchy_name
        where = f" in hierarchy {hierarchy_name!r}" if hierarchy_name else ""
        super().__init__(f"unknown concept {concept!r}{where}")


class LevelError(HierarchyError):
    """An abstraction level is out of range for a hierarchy or lattice."""


class PathDatabaseError(FlowCubeError):
    """A path database record is malformed (schema/path mismatch)."""


class EncodingError(FlowCubeError):
    """Item or stage encoding failed (value missing from a hierarchy, etc.)."""


class MiningError(FlowCubeError):
    """A frequent-pattern mining run was configured or used incorrectly."""


class CubeError(FlowCubeError):
    """FlowCube construction or lookup failed."""


class QueryError(FlowCubeError):
    """An OLAP query over a flowcube was invalid."""


class GenerationError(FlowCubeError):
    """Synthetic data generation was configured inconsistently."""


class CleaningError(FlowCubeError):
    """Raw RFID readings could not be cleaned into well-formed paths."""


class StoreError(FlowCubeError):
    """A persistent path/cube store is missing, corrupt, or misused."""


class ServeError(FlowCubeError):
    """An HTTP serving request was malformed (bad cut, body, or route)."""
