"""Result container for the multi-level miners (Shared, Basic, Cubing).

All three algorithms produce the same thing — supports for itemsets over
the mixed dimension-item / stage-item alphabet — wrapped in a
:class:`FlowMiningResult` that knows how to decode itemsets back into
flowcube coordinates:

* a **dimension-only** itemset is a frequent *cell*: each present dimension
  pins a concept at some level, absent dimensions are ``*``;
* a **cell + stage items** itemset is a frequent *path segment* of that
  cell at the stage items' path abstraction level.

:meth:`FlowMiningResult.segments_by_cell` packages the segments in the
shape :meth:`repro.core.flowcube.FlowCube.build` consumes, closing the loop
from shared mining to flowgraph exceptions.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.flowgraph_exceptions import Segment
from repro.core.lattice import ItemLevel, PathLattice
from repro.core.path_database import PathSchema
from repro.encoding.item_encoding import DimItem
from repro.encoding.stage_encoding import StageItem
from repro.encoding.transactions import Item
from repro.mining.stats import MiningStats

__all__ = ["item_sort_key", "FlowMiningResult"]

CellCoordinates = tuple[ItemLevel, tuple[str, ...]]


def item_sort_key(item: Item) -> tuple:
    """Deterministic total order over the mixed mining alphabet.

    Dimension items sort before stage items; within each kind the order is
    by coordinates, so candidate generation's sorted-prefix join works.
    The key itself lives on the item classes (``Item.sort_key``) so the
    interning layer can cache it without importing the mining package.
    """
    return item.sort_key


class FlowMiningResult:
    """Frequent cells and frequent path segments, as mined.

    Attributes:
        supports: Itemset → absolute support.
        threshold: The resolved absolute δ.
        n_transactions: Size of the scanned transaction database.
        schema: The source path schema (needed to decode item codes).
        path_lattice: The interesting path levels.
        stats: Run statistics.
    """

    def __init__(
        self,
        supports: Mapping[frozenset, int],
        threshold: int,
        n_transactions: int,
        schema: PathSchema,
        path_lattice: PathLattice,
        stats: MiningStats,
    ) -> None:
        self.supports = dict(supports)
        self.threshold = threshold
        self.n_transactions = n_transactions
        self.schema = schema
        self.path_lattice = path_lattice
        self.stats = stats

    @classmethod
    def from_interned(
        cls,
        supports_by_ids: Mapping[tuple, int],
        interner,
        threshold: int,
        n_transactions: int,
        schema: PathSchema,
        path_lattice: PathLattice,
        stats: MiningStats,
    ) -> "FlowMiningResult":
        """Decode an id-space mining result back into real ``Item`` sets.

        The interned bitmap kernel mines entirely over dense int ids; this
        constructor is the decode boundary — everything downstream
        (frequent cells, segments, flowgraph exceptions, the query layer)
        keeps seeing :class:`DimItem`/:class:`StageItem` objects.

        Args:
            supports_by_ids: Itemsets as tuples of interned ids → support.
            interner: The :class:`~repro.perf.interning.ItemInterner` the
                ids were assigned by.
        """
        supports = {
            interner.decode(ids): support
            for ids, support in supports_by_ids.items()
        }
        return cls(
            supports=supports,
            threshold=threshold,
            n_transactions=n_transactions,
            schema=schema,
            path_lattice=path_lattice,
            stats=stats,
        )

    def __len__(self) -> int:
        return len(self.supports)

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def _decode_cell(self, dim_items: list[DimItem]) -> CellCoordinates | None:
        """Itemset's dimension part → (item level, cell key).

        Returns ``None`` for itemsets that do not describe a single cell
        (two items on the same dimension — only the Basic baseline
        produces those).
        """
        n_dims = self.schema.n_dimensions
        levels = [0] * n_dims
        key = ["*"] * n_dims
        for item in dim_items:
            if item.code == "*":
                continue  # apex pseudo-items add no constraint
            if levels[item.dim] != 0:
                return None
            levels[item.dim] = item.level
            key[item.dim] = self.schema.dimensions[item.dim].concept_for_code(
                item.code
            )
        return ItemLevel(levels), tuple(key)

    @staticmethod
    def _decode_segment(stage_items: list[StageItem]) -> tuple[int, Segment] | None:
        """Itemset's stage part → (path level id, segment constraints).

        Returns ``None`` when the stages span multiple path levels or are
        not a nested chain (Basic can produce such sets before pruning).
        """
        level_ids = {item.level_id for item in stage_items}
        if len(level_ids) != 1:
            return None
        ordered = sorted(stage_items, key=lambda s: len(s.prefix))
        for shorter, longer in zip(ordered, ordered[1:]):
            if longer.prefix[: len(shorter.prefix)] != shorter.prefix:
                return None
        segment: Segment = tuple((s.prefix, s.duration) for s in ordered)
        return level_ids.pop(), segment

    def frequent_cells(self) -> dict[CellCoordinates, int]:
        """All frequent cells: (item level, key) → support.

        Includes the all-``*`` apex cell with support = |D|.
        """
        cells: dict[CellCoordinates, int] = {
            (
                ItemLevel([0] * self.schema.n_dimensions),
                tuple(["*"] * self.schema.n_dimensions),
            ): self.n_transactions
        }
        for itemset, support in self.supports.items():
            items = list(itemset)
            if not all(isinstance(i, DimItem) for i in items):
                continue
            decoded = self._decode_cell(items)
            if decoded is not None:
                cells[decoded] = support
        return cells

    def frequent_segments(
        self,
    ) -> dict[tuple[ItemLevel, tuple[str, ...], int], dict[Segment, int]]:
        """Frequent segments grouped by (item level, cell key, path level id)."""
        out: dict[tuple[ItemLevel, tuple[str, ...], int], dict[Segment, int]] = {}
        for itemset, support in self.supports.items():
            dim_items = [i for i in itemset if isinstance(i, DimItem)]
            stage_items = [i for i in itemset if isinstance(i, StageItem)]
            if not stage_items:
                continue
            cell = self._decode_cell(dim_items)
            decoded = self._decode_segment(stage_items)
            if cell is None or decoded is None:
                continue
            level_id, segment = decoded
            item_level, key = cell
            out.setdefault((item_level, key, level_id), {})[segment] = support
        return out

    def segments_by_cell(
        self,
    ) -> dict[tuple, list[Segment]]:
        """Segments keyed the way :meth:`FlowCube.build` expects.

        Keys are ``(item level, path level, cell key)``; values list each
        cell's frequent segments (at that path level).
        """
        packaged: dict[tuple, list[Segment]] = {}
        for (item_level, key, level_id), segments in self.frequent_segments().items():
            path_level = self.path_lattice[level_id]
            packaged[(item_level, path_level, key)] = list(segments)
        return packaged
