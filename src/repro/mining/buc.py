"""BUC-style iceberg cubing over the item dimensions (Beyer & Ramakrishnan
[4], as used by Algorithm 2).

The cubing baseline needs all *frequent cells*: for every item abstraction
level, the groups of at least δ records.  Following BUC, cells are computed
from high abstraction levels to low ones by recursive partition refinement —
specialising one dimension one hierarchy level at a time — so an infrequent
cell prunes all of its specialisations (the apriori property on the item
lattice).  The measure carried per cell is the record-id list (the paper's
"list of transaction identifiers"), which is exactly what the per-cell
frequent-pattern step of Algorithm 2 consumes — and whose size is the I/O
weakness Section 5.2 points out.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.core.flowgraph_exceptions import resolve_min_support
from repro.core.lattice import ItemLevel
from repro.core.path_database import PathDatabase

__all__ = ["IcebergCell", "buc_iceberg_cells"]

#: One frequent cell: (item level, cell key, member record ids).
IcebergCell = tuple[ItemLevel, tuple[str, ...], tuple[int, ...]]


def buc_iceberg_cells(
    database: PathDatabase,
    min_support: float,
) -> Iterator[IcebergCell]:
    """Enumerate every iceberg cell of the item-lattice cube.

    Cells stream out most-general-first along each recursion branch; the
    apex (all-``*``) cell comes first whenever the database itself clears
    the threshold.

    Args:
        database: The path database (only its dimension columns are used).
        min_support: δ, fractional (<1) or absolute.
    """
    threshold = resolve_min_support(min_support, len(database))
    hierarchies = database.schema.dimensions
    records = database.records
    record_ids = tuple(r.record_id for r in records)
    dims = tuple(r.dims for r in records)
    if len(records) < threshold:
        return
    n = len(hierarchies)
    apex_levels = [0] * n
    apex_key = ["*"] * n
    yield from _refine(
        0,
        apex_levels,
        apex_key,
        list(range(len(records))),
        hierarchies,
        dims,
        record_ids,
        threshold,
    )


def _refine(
    dim: int,
    levels: list[int],
    key: list[str],
    rows: list[int],
    hierarchies: Sequence,
    dims: Sequence[tuple[str, ...]],
    record_ids: tuple[int, ...],
    threshold: int,
) -> Iterator[IcebergCell]:
    """Emit the current cell, then specialise dimensions ``>= dim``.

    Specialising only dimensions at-or-right-of *dim* makes each cell
    reachable along exactly one recursion path (the BUC enumeration
    order), and partition sizes shrink monotonically so the iceberg test
    prunes whole subtrees.
    """
    yield (
        ItemLevel(levels),
        tuple(key),
        tuple(record_ids[i] for i in rows),
    )
    for d in range(dim, len(hierarchies)):
        hierarchy = hierarchies[d]
        level = levels[d]
        if level >= hierarchy.depth:
            continue
        partitions: dict[str, list[int]] = {}
        for i in rows:
            value = hierarchy.ancestor_at_level(dims[i][d], level + 1)
            partitions.setdefault(value, []).append(i)
        previous_key = key[d]
        for value, members in partitions.items():
            if len(members) < threshold:
                continue  # iceberg pruning: no specialisation can recover
            levels[d] += 1
            key[d] = value
            yield from _refine(
                d,
                levels,
                key,
                members,
                hierarchies,
                dims,
                record_ids,
                threshold,
            )
            levels[d] -= 1
            key[d] = previous_key
