"""The Basic baseline (Section 6): Shared without candidate pruning.

Basic scans the same multi-level transaction database but generates
candidates with the plain Apriori join — no pre-counting, no unlinkable-
stage pruning, no ancestor pruning — and its transactions keep the
top-of-hierarchy ``*`` items.  The result is the same set of frequent
patterns (plus the vacuous ancestor-polluted ones), at the cost of the
candidate blow-up Figure 11 documents: Basic counts candidates out to
length ~12 where Shared stops near 8, and on dense data its candidate sets
no longer fit in memory (the paper could not run it past 200k paths).

A ``candidate_limit`` safety valve truncates runaway runs so benchmark
sweeps terminate; a truncated run is flagged in the stats.
"""

from __future__ import annotations

import time
from collections import Counter

from repro.core.flowgraph_exceptions import resolve_min_support
from repro.core.lattice import PathLattice
from repro.core.path_database import PathDatabase
from repro.encoding.transactions import TransactionDatabase
from repro.mining.apriori import (
    count_candidates_tidset,
    generate_candidates,
    tid_lists,
)
from repro.mining.result import FlowMiningResult, item_sort_key
from repro.mining.stats import MiningStats

__all__ = ["basic_mine"]


def basic_mine(
    database: PathDatabase,
    path_lattice: PathLattice | None = None,
    min_support: float = 0.01,
    max_length: int | None = None,
    candidate_limit: int | None = 2_000_000,
    transaction_db: TransactionDatabase | None = None,
) -> FlowMiningResult:
    """Run the unpruned baseline over *database*.

    Args:
        database: The path database.
        path_lattice: Interesting path levels (defaults to the paper's 4).
        min_support: δ, fractional (<1) or absolute.
        max_length: Optional bound on pattern length.
        candidate_limit: Abort candidate generation past this many pending
            candidates in one level — the in-memory blow-up guard.  The
            truncation is recorded in ``stats.pruned["truncated"]``.
        transaction_db: Reuse an encoded database (must have been built
            with ``include_top_level=True`` to match the baseline).
    """
    stats = MiningStats()
    started = time.perf_counter()
    if path_lattice is None:
        path_lattice = PathLattice.paper_default(database.schema.location)
    if transaction_db is None:
        transaction_db = TransactionDatabase(
            database, path_lattice, include_top_level=True
        )
    transactions = [t.items for t in transaction_db.transactions]
    threshold = resolve_min_support(min_support, len(transactions))

    counts: Counter = Counter()
    for transaction in transactions:
        counts.update(transaction)
    stats.scans += 1
    stats.candidates_per_length[1] = len(counts)
    frequent_sorted = sorted(
        ((item,) for item, n in counts.items() if n >= threshold),
        key=lambda t: item_sort_key(t[0]),
    )
    stats.frequent_per_length[1] = len(frequent_sorted)
    supports: dict[frozenset, int] = {
        frozenset(t): counts[t[0]] for t in frequent_sorted
    }
    item_tids = tid_lists(transactions)
    tids: dict[tuple, set[int]] = {t: item_tids[t[0]] for t in frequent_sorted}

    length = 1
    while frequent_sorted and (max_length is None or length < max_length):
        candidates = generate_candidates(
            frequent_sorted, pair_filter=None, stats=stats, key=item_sort_key
        )
        if candidate_limit is not None and len(candidates) > candidate_limit:
            stats.pruned["truncated"] += len(candidates)
            break
        if not candidates:
            break
        candidate_tids = count_candidates_tidset(candidates, tids, stats)
        length += 1
        frequent_sorted = [
            c for c, t in candidate_tids.items() if len(t) >= threshold
        ]
        tids = {c: candidate_tids[c] for c in frequent_sorted}
        stats.frequent_per_length[length] += len(frequent_sorted)
        for itemset in frequent_sorted:
            supports[frozenset(itemset)] = len(candidate_tids[itemset])

    stats.elapsed_seconds = time.perf_counter() - started
    return FlowMiningResult(
        supports=supports,
        threshold=threshold,
        n_transactions=len(transactions),
        schema=database.schema,
        path_lattice=path_lattice,
        stats=stats,
    )
