"""FP-growth frequent-itemset mining (Han, Pei & Yin).

Section 3 notes that flowgraph exception mining can use "any existing
frequent pattern mining algorithm"; the Cubing baseline likewise only needs
*some* per-cell miner.  This module provides FP-growth as the candidate-free
alternative to :mod:`repro.mining.apriori` — useful on the dense cells where
Apriori's candidate sets explode (Figure 10's regime).

The implementation is the textbook one: build an FP-tree over
frequency-ordered transactions, then recursively mine conditional trees.
It returns the same ``{frozenset: support}`` mapping as :func:`apriori`,
so the two are interchangeable (and the tests cross-check them).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable, Hashable, Sequence

__all__ = ["FPTree", "fp_growth"]

ItemT = Hashable


class _FPNode:
    """One FP-tree node: an item, its count, and tree links."""

    __slots__ = ("item", "count", "parent", "children", "next_link")

    def __init__(self, item: ItemT, parent: "_FPNode | None") -> None:
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: dict[ItemT, _FPNode] = {}
        self.next_link: _FPNode | None = None


class FPTree:
    """An FP-tree with header links, built from weighted transactions."""

    def __init__(self) -> None:
        self.root = _FPNode(None, None)
        self.header: dict[ItemT, _FPNode] = {}
        self.item_counts: Counter = Counter()

    def insert(self, items: Sequence[ItemT], count: int = 1) -> None:
        """Insert one frequency-ordered transaction with multiplicity."""
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _FPNode(item, node)
                node.children[item] = child
                # Thread the new node onto the header chain for its item.
                child.next_link = self.header.get(item)
                self.header[item] = child
            child.count += count
            node = child
            self.item_counts[item] += count

    def prefix_paths(self, item: ItemT) -> list[tuple[list[ItemT], int]]:
        """All root paths ending just above occurrences of *item*."""
        paths: list[tuple[list[ItemT], int]] = []
        node = self.header.get(item)
        while node is not None:
            path: list[ItemT] = []
            parent = node.parent
            while parent is not None and parent.item is not None:
                path.append(parent.item)
                parent = parent.parent
            path.reverse()
            if path:
                paths.append((path, node.count))
            node = node.next_link
        return paths


def fp_growth(
    transactions: Sequence[frozenset],
    min_support: int,
    max_length: int | None = None,
    key: Callable[[ItemT], object] | None = None,
) -> dict[frozenset, int]:
    """Mine all frequent itemsets with absolute support ≥ *min_support*.

    Drop-in equivalent of :func:`repro.mining.apriori.apriori` (without the
    candidate-pruning hooks, which FP-growth does not need).

    Args:
        transactions: The database.
        min_support: Absolute threshold (≥ 1).
        max_length: Bound on itemset size (None = unbounded).
        key: Tie-breaking sort key for equal-frequency items; defaults to
            a stable ``(type name, repr)`` key so mixed item types order.
    """
    if key is None:
        key = lambda item: (type(item).__name__, repr(item))  # noqa: E731

    counts: Counter = Counter()
    for transaction in transactions:
        counts.update(transaction)
    frequent_items = {i for i, n in counts.items() if n >= min_support}

    def order(items) -> list[ItemT]:
        kept = [i for i in items if i in frequent_items]
        kept.sort(key=lambda i: (-counts[i], key(i)))
        return kept

    tree = FPTree()
    for transaction in transactions:
        ordered = order(transaction)
        if ordered:
            tree.insert(ordered)

    result: dict[frozenset, int] = {}
    _mine(tree, min_support, (), result, max_length, key)
    return result


def _mine(
    tree: FPTree,
    min_support: int,
    suffix: tuple,
    result: dict[frozenset, int],
    max_length: int | None,
    key: Callable[[ItemT], object],
) -> None:
    """Recursive FP-growth over conditional trees."""
    if max_length is not None and len(suffix) >= max_length:
        return
    # Visit items least-frequent-first so conditional trees stay small.
    items = sorted(
        (i for i, n in tree.item_counts.items() if n >= min_support),
        key=lambda i: (tree.item_counts[i], key(i)),
    )
    for item in items:
        support = tree.item_counts[item]
        new_suffix = suffix + (item,)
        result[frozenset(new_suffix)] = support
        conditional = FPTree()
        for path, count in tree.prefix_paths(item):
            conditional.insert(path, count)
        # Re-filter the conditional tree by support before recursing.
        if conditional.item_counts:
            pruned = _prune_tree(conditional, min_support)
            if pruned.item_counts:
                _mine(pruned, min_support, new_suffix, result, max_length, key)


def _prune_tree(tree: FPTree, min_support: int) -> FPTree:
    """Rebuild a conditional tree keeping only locally-frequent items."""
    keep = {i for i, n in tree.item_counts.items() if n >= min_support}
    if len(keep) == len(tree.item_counts):
        return tree
    rebuilt = FPTree()
    _copy_paths(tree.root, [], rebuilt, keep)
    return rebuilt


def _copy_paths(
    node: _FPNode, path: list, rebuilt: FPTree, keep: set
) -> None:
    """Re-insert surviving items of every root-to-node path.

    Each node's *own* count minus its children's counts is the number of
    transactions ending exactly there; re-inserting with that multiplicity
    preserves path multiplicities exactly.
    """
    for child in node.children.values():
        kept_path = path + ([child.item] if child.item in keep else [])
        ended_here = child.count - sum(g.count for g in child.children.values())
        if ended_here > 0 and kept_path:
            rebuilt.insert(kept_path, ended_here)
        _copy_paths(child, kept_path, rebuilt, keep)
