"""Frequent-pattern mining: Apriori, FP-growth, BUC, Shared/Basic/Cubing."""

from repro.mining.apriori import apriori, count_candidates, generate_candidates
from repro.mining.basic import basic_mine
from repro.mining.buc import IcebergCell, buc_iceberg_cells
from repro.mining.cubing import cubing_mine
from repro.mining.fptree import FPTree, fp_growth
from repro.mining.result import FlowMiningResult, item_sort_key
from repro.mining.shared import shared_mine, shared_pair_filter, top_path_level_id
from repro.mining.starcubing import star_iceberg_cells, star_table
from repro.mining.stats import MiningStats

__all__ = [
    "FPTree",
    "FlowMiningResult",
    "IcebergCell",
    "MiningStats",
    "apriori",
    "basic_mine",
    "buc_iceberg_cells",
    "count_candidates",
    "cubing_mine",
    "fp_growth",
    "generate_candidates",
    "item_sort_key",
    "shared_mine",
    "shared_pair_filter",
    "star_iceberg_cells",
    "star_table",
    "top_path_level_id",
]
