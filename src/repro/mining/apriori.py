"""Classic Apriori over generic transactions (Agrawal & Srikant [3]).

This is the substrate the paper's algorithms build on: the Cubing baseline
calls it per cell, the flowgraph exception miner uses a specialised variant,
and Shared/Basic reuse its counting loop through :func:`count_candidates`.

Transactions are frozensets of hashable items.  Candidate generation is the
standard sorted-prefix join with the all-subsets-frequent check; an optional
``pair_filter`` hook lets callers inject domain pruning (e.g. stage
linkability) directly into the join.

Three support-counting strategies are provided and produce identical
results (the level-wise candidate structure, and hence every pruning
statistic, is the same for all of them):

* ``"scan"`` — the textbook per-pass subset test (what the paper's C++
  implementation does);
* ``"tidset"`` — vertical counting: each frequent itemset carries the set
  of transaction ids containing it, and a candidate's support is the
  intersection of its two join parents' tidsets;
* ``"bitmap"`` (default) — vertical counting over interned items
  (:mod:`repro.perf.interning`): tid-lists are packed into big-int
  bitmaps and a candidate's support is the ``bit_count()`` of its
  parents' mask AND (:mod:`repro.perf.bitmap`).  In pure Python this is
  the fastest by a wide margin.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable, Hashable, Iterable, Sequence

from repro.mining.stats import MiningStats
from repro.perf.bitmap import count_candidates_bitmap, item_masks
from repro.perf.interning import InternedTransactions

__all__ = [
    "apriori",
    "count_candidates",
    "count_candidates_tidset",
    "generate_candidates",
    "tid_lists",
]

ItemT = Hashable
ItemsetT = frozenset
PairFilter = Callable[[ItemT, ItemT], bool]


def count_candidates(
    transactions: Sequence[frozenset],
    candidates: Iterable[tuple],
    stats: MiningStats | None = None,
) -> Counter:
    """Count the support of each candidate itemset in one database pass.

    Candidates are tuples of items (any order).  Each candidate is indexed
    by one of its items; a transaction only tests the candidates indexed
    under the items it actually contains, which keeps the pass roughly
    linear in matches rather than ``|D| × |C|``.
    """
    index: dict[ItemT, list[tuple[tuple, frozenset]]] = {}
    n_candidates = 0
    for candidate in candidates:
        n_candidates += 1
        # Index under the first item of the canonical order; any member
        # works for correctness, the first keeps buckets deterministic.
        index.setdefault(candidate[0], []).append((candidate, frozenset(candidate)))
    support: Counter = Counter()
    for transaction in transactions:
        for item in transaction:
            for candidate, item_set in index.get(item, ()):
                if item_set <= transaction:
                    support[candidate] += 1
    if stats is not None:
        stats.scans += 1
        if n_candidates:
            length = len(next(iter(index.values()))[0][0])
            stats.candidates_per_length[length] += n_candidates
    return support


def generate_candidates(
    frequent: Sequence[tuple],
    pair_filter: PairFilter | None = None,
    stats: MiningStats | None = None,
    key: Callable[[ItemT], object] | None = None,
) -> list[tuple]:
    """Apriori join + prune: build length ``k+1`` candidates from length-k.

    Args:
        frequent: Frequent itemsets of length k as *sorted* tuples.
        pair_filter: Optional predicate on the two differing items; a pair
            rejected here never forms a candidate (used for stage
            linkability and ancestor pruning).
        stats: Pruning counters (``"unlinkable"`` for pair_filter rejects,
            ``"subset"`` for the all-subsets-frequent check).
        key: Item sort key; must match the order of the input tuples.
    """
    if key is None:
        key = _default_key
    frequent_set = set(frequent)
    by_prefix: dict[tuple, list] = {}
    for itemset in frequent:
        by_prefix.setdefault(itemset[:-1], []).append(itemset[-1])
    candidates: list[tuple] = []
    for prefix, tails in by_prefix.items():
        tails.sort(key=key)
        for i, a in enumerate(tails):
            for b in tails[i + 1 :]:
                if pair_filter is not None and not pair_filter(a, b):
                    if stats is not None:
                        stats.pruned["unlinkable"] += 1
                    continue
                candidate = prefix + (a, b)
                if _all_subsets_frequent(candidate, frequent_set):
                    candidates.append(candidate)
                elif stats is not None:
                    stats.pruned["subset"] += 1
    return candidates


def _all_subsets_frequent(candidate: tuple, frequent_set: set) -> bool:
    """Check every length-(k-1) subset of *candidate* is frequent.

    The two subsets obtained by dropping one of the last two items are the
    join's parents and need no check.
    """
    for drop in range(len(candidate) - 2):
        subset = candidate[:drop] + candidate[drop + 1 :]
        if subset not in frequent_set:
            return False
    return True


def tid_lists(transactions: Sequence[frozenset]) -> dict[ItemT, set[int]]:
    """Vertical representation: item → set of transaction indexes."""
    tids: dict[ItemT, set[int]] = {}
    for index, transaction in enumerate(transactions):
        for item in transaction:
            tids.setdefault(item, set()).add(index)
    return tids


def count_candidates_tidset(
    candidates: Iterable[tuple],
    parent_tids: dict[tuple, set[int]],
    stats: MiningStats | None = None,
) -> dict[tuple, set[int]]:
    """Candidate tidsets by intersecting the two join parents' tidsets.

    Each candidate ``prefix + (a, b)`` came from parents ``prefix + (a,)``
    and ``prefix + (b,)``; the transactions containing the candidate are
    exactly the intersection of the parents' tidsets.
    """
    out: dict[tuple, set[int]] = {}
    n_candidates = 0
    for candidate in candidates:
        n_candidates += 1
        left = parent_tids[candidate[:-1]]
        right = parent_tids[candidate[:-2] + candidate[-1:]]
        out[candidate] = left & right
    if stats is not None:
        stats.scans += 1
        if n_candidates:
            length = len(next(iter(out)))
            stats.candidates_per_length[length] += n_candidates
    return out


def apriori(
    transactions: Sequence[frozenset],
    min_support: int,
    max_length: int | None = None,
    pair_filter: PairFilter | None = None,
    stats: MiningStats | None = None,
    key: Callable[[ItemT], object] | None = None,
    counting: str = "bitmap",
) -> dict[frozenset, int]:
    """Mine all frequent itemsets with absolute support ≥ *min_support*.

    Args:
        transactions: The database, as frozensets of hashable items.
        min_support: Absolute support threshold (≥ 1).
        max_length: Stop after this pattern length (None = run to fixpoint).
        pair_filter: Domain pruning hook for candidate generation.
        stats: Optional :class:`~repro.mining.stats.MiningStats` to fill.
        key: Sort key making mixed item types orderable (default: by
            ``(type name, repr)`` which is stable for our item classes).
        counting: ``"bitmap"`` (default), ``"tidset"``, or ``"scan"``;
            identical results and statistics, different speed.

    Returns:
        Mapping frozenset(items) → absolute support.
    """
    if key is None:
        key = _default_key
    if counting not in ("bitmap", "tidset", "scan"):
        raise ValueError(f"unknown counting strategy {counting!r}")
    if counting == "bitmap":
        return _apriori_bitmap(
            transactions, min_support, max_length, pair_filter, stats, key
        )
    counts: Counter = Counter()
    for transaction in transactions:
        counts.update(transaction)
    if stats is not None:
        stats.scans += 1
        stats.candidates_per_length[1] += len(counts)
    frequent_sorted: list[tuple] = sorted(
        ((item,) for item, n in counts.items() if n >= min_support),
        key=lambda t: key(t[0]),
    )
    result: dict[frozenset, int] = {
        frozenset(t): counts[t[0]] for t in frequent_sorted
    }
    if stats is not None:
        stats.frequent_per_length[1] += len(frequent_sorted)

    tids: dict[tuple, set[int]] = {}
    if counting == "tidset":
        item_tids = tid_lists(transactions)
        tids = {t: item_tids[t[0]] for t in frequent_sorted}

    length = 1
    while frequent_sorted and (max_length is None or length < max_length):
        candidates = generate_candidates(frequent_sorted, pair_filter, stats, key)
        if not candidates:
            break
        length += 1
        if counting == "tidset":
            candidate_tids = count_candidates_tidset(candidates, tids, stats)
            frequent_sorted = [
                c for c, t in candidate_tids.items() if len(t) >= min_support
            ]
            tids = {c: candidate_tids[c] for c in frequent_sorted}
            for itemset in frequent_sorted:
                result[frozenset(itemset)] = len(candidate_tids[itemset])
        else:
            support = count_candidates(transactions, candidates, stats)
            frequent_sorted = [c for c in candidates if support[c] >= min_support]
            for itemset in frequent_sorted:
                result[frozenset(itemset)] = support[itemset]
        if stats is not None:
            stats.frequent_per_length[length] += len(frequent_sorted)
    return result


def _apriori_bitmap(
    transactions: Sequence[frozenset],
    min_support: int,
    max_length: int | None,
    pair_filter: PairFilter | None,
    stats: MiningStats | None,
    key: Callable[[ItemT], object],
) -> dict[frozenset, int]:
    """The interned bitmap strategy: :func:`apriori` in id space.

    Items are interned in *key* order, so the id-space join mirrors the
    item-space join one-to-one (same candidates, same pruning counts);
    results decode back to item frozensets on the way out.
    """
    interned = InternedTransactions.from_transactions(transactions, sort_key=key)
    interner = interned.interner
    masks = item_masks(interned.rows, len(interner))
    counts = {
        item_id: masks[item_id].bit_count() for item_id in range(len(interner))
    }
    if stats is not None:
        stats.scans += 1
        stats.candidates_per_length[1] += len(counts)
    keys = interner.sort_keys
    frequent_sorted: list[tuple] = sorted(
        ((item_id,) for item_id, n in counts.items() if n >= min_support),
        key=lambda t: keys[t[0]],
    )
    result_ids: dict[tuple, int] = {t: counts[t[0]] for t in frequent_sorted}
    if stats is not None:
        stats.frequent_per_length[1] += len(frequent_sorted)
    mask_of: dict[tuple, int] = {t: masks[t[0]] for t in frequent_sorted}

    items = interner.items
    pair_filter_ids: PairFilter | None = None
    if pair_filter is not None:
        def pair_filter_ids(a: int, b: int) -> bool:
            return pair_filter(items[a], items[b])

    length = 1
    while frequent_sorted and (max_length is None or length < max_length):
        candidates = generate_candidates(
            frequent_sorted, pair_filter_ids, stats, keys.__getitem__
        )
        if not candidates:
            break
        length += 1
        candidate_masks = count_candidates_bitmap(candidates, mask_of, stats)
        frequent_sorted = [
            c for c, mask in candidate_masks.items()
            if mask.bit_count() >= min_support
        ]
        mask_of = {c: candidate_masks[c] for c in frequent_sorted}
        for itemset in frequent_sorted:
            result_ids[itemset] = candidate_masks[itemset].bit_count()
        if stats is not None:
            stats.frequent_per_length[length] += len(frequent_sorted)
    return {interner.decode(t): n for t, n in result_ids.items()}


def _default_key(item: ItemT) -> tuple[str, str]:
    return (type(item).__name__, repr(item))
