"""The Cubing baseline (Section 5.2, Algorithm 2).

Cubing splits the problem the natural-but-slower way:

1. compute the iceberg cube over the path-independent dimensions with BUC,
   carrying record-id lists as the cell measure, then
2. for each frequent cell, read its transactions back and run a standard
   frequent-pattern miner (Apriori by default, FP-growth optionally) over
   the *stage items only*.

What it cannot do — and what makes Shared win on dense paths (Figures 6
and 10) — is prune the path lattice globally: a stage infrequent at the
top abstraction level is re-generated and re-counted as a candidate inside
every single frequent cell.
"""

from __future__ import annotations

import time

from repro.core.flowgraph_exceptions import resolve_min_support
from repro.core.lattice import PathLattice
from repro.core.path_database import PathDatabase
from repro.encoding.item_encoding import DimItem, encode_dimension_value
from repro.encoding.stage_encoding import StageItem, stages_linkable
from repro.encoding.transactions import TransactionDatabase
from repro.mining.apriori import apriori
from repro.mining.buc import buc_iceberg_cells
from repro.mining.fptree import fp_growth
from repro.mining.result import FlowMiningResult, item_sort_key
from repro.mining.stats import MiningStats
from repro.errors import MiningError

__all__ = ["cubing_mine"]


def cubing_mine(
    database: PathDatabase,
    path_lattice: PathLattice | None = None,
    min_support: float = 0.01,
    max_length: int | None = None,
    miner: str = "apriori",
    cuber: str = "buc",
    transaction_db: TransactionDatabase | None = None,
    kernel: str = "bitmap",
) -> FlowMiningResult:
    """Run Algorithm 2 over *database*.

    Args:
        database: The path database.
        path_lattice: Interesting path levels (defaults to the paper's 4).
        min_support: δ, fractional (<1) or absolute.
        max_length: Bound on the *total* pattern length (cell + segment),
            matching the other miners' semantics.
        miner: Per-cell frequent-pattern algorithm, ``"apriori"`` or
            ``"fpgrowth"``.
        cuber: Iceberg cubing substrate, ``"buc"`` [4] or ``"star"`` [20]
            — §5.2 allows either; they enumerate the same cells.
        transaction_db: Reuse an encoded database (Shared-style encoding,
            without top-level items).
        kernel: Per-cell Apriori counting strategy — ``"bitmap"``
            (default), ``"tidset"``, or ``"scan"``; forwarded to
            :func:`~repro.mining.apriori.apriori` (ignored by FP-growth).

    Returns:
        A :class:`~repro.mining.result.FlowMiningResult` with the same
        frequent cells and segments as :func:`repro.mining.shared.shared_mine`
        (the test-suite cross-checks the two).
    """
    if miner not in ("apriori", "fpgrowth"):
        raise MiningError(f"unknown per-cell miner {miner!r}")
    if cuber not in ("buc", "star"):
        raise MiningError(f"unknown iceberg cuber {cuber!r}")
    stats = MiningStats()
    started = time.perf_counter()
    if path_lattice is None:
        path_lattice = PathLattice.paper_default(database.schema.location)
    if transaction_db is None:
        transaction_db = TransactionDatabase(
            database, path_lattice, include_top_level=False
        )
    threshold = resolve_min_support(min_support, len(database))
    # Stage-item transactions, addressable by record id (the tid lists the
    # BUC cells carry refer back to these).
    stage_items_by_tid: dict[int, frozenset] = {
        t.tid: frozenset(i for i in t.items if isinstance(i, StageItem))
        for t in transaction_db.transactions
    }
    hierarchies = database.schema.dimensions

    if cuber == "buc":
        cells = buc_iceberg_cells(database, min_support)
    else:
        from repro.mining.starcubing import star_iceberg_cells

        cells = star_iceberg_cells(database, min_support)

    supports: dict[frozenset, int] = {}
    for item_level, key, record_ids in cells:
        cell_items = _cell_itemset(item_level, key, hierarchies)
        if cell_items:
            supports[frozenset(cell_items)] = len(record_ids)
        cell_budget = (
            None if max_length is None else max_length - len(cell_items)
        )
        if cell_budget is not None and cell_budget < 1:
            continue
        cell_transactions = [stage_items_by_tid[tid] for tid in record_ids]
        cell_stats = MiningStats()
        if miner == "apriori":
            segments = apriori(
                cell_transactions,
                threshold,
                max_length=cell_budget,
                pair_filter=stages_linkable,
                stats=cell_stats,
                key=item_sort_key,
                counting=kernel,
            )
        else:
            mined = fp_growth(
                cell_transactions,
                threshold,
                max_length=cell_budget,
                key=item_sort_key,
            )
            # FP-growth has no join-time hook, so it also surfaces itemsets
            # mixing path levels (genuinely co-occurring but redundant);
            # keep only the well-formed segments the Apriori path produces.
            segments = {
                itemset: support
                for itemset, support in mined.items()
                if _is_segment(itemset)
            }
            cell_stats.scans += 1
        stats.merge(cell_stats)
        for segment_items, support in segments.items():
            supports[frozenset(cell_items) | segment_items] = support

    stats.elapsed_seconds = time.perf_counter() - started
    return FlowMiningResult(
        supports=supports,
        threshold=threshold,
        n_transactions=len(database),
        schema=database.schema,
        path_lattice=path_lattice,
        stats=stats,
    )


def _is_segment(itemset: frozenset) -> bool:
    """All stages at one path level, prefixes a chain of distinct prefixes.

    The same predicate :func:`~repro.encoding.stage_encoding.stages_linkable`
    enforces pairwise during the Apriori join.
    """
    stages = sorted(itemset, key=lambda s: len(s.prefix))
    if len({s.level_id for s in stages}) > 1:
        return False
    for a, b in zip(stages, stages[1:]):
        if len(a.prefix) == len(b.prefix):
            return False
        if b.prefix[: len(a.prefix)] != a.prefix:
            return False
    return True


def _cell_itemset(item_level, key, hierarchies) -> list[DimItem]:
    """Encode a BUC cell's coordinates as dimension items (``*`` omitted)."""
    items: list[DimItem] = []
    for dim, (level, value) in enumerate(zip(item_level, key)):
        if level == 0:
            continue
        items.append(encode_dimension_value(dim, value, hierarchies[dim]))
    return items
