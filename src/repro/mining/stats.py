"""Mining run statistics (Section 6.7's pruning-power measurements).

Every miner in :mod:`repro.mining` fills a :class:`MiningStats` so the
benchmark harness can reproduce Figure 11 (candidates counted per pattern
length, Shared vs Basic) and report scan counts and pruning effectiveness.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["MiningStats"]


@dataclass
class MiningStats:
    """Counters collected during one mining run.

    Attributes:
        candidates_per_length: Candidates whose support was *counted*
            against the database, per pattern length — the Figure 11 series.
        frequent_per_length: Patterns that met the threshold, per length.
        pruned: How many candidates each pruning rule removed before
            counting (keys: ``"subset"``, ``"unlinkable"``, ``"ancestor"``,
            ``"precount"``, ``"duplicate_dim"``).
        scans: Passes over the transaction database.
        precounted_patterns: High-level patterns pre-counted opportunistically.
        elapsed_seconds: Wall-clock time of the run.
        phase_seconds: Wall-clock breakdown by mining phase.  The Shared
            miners fill the keys ``"encode"`` (transaction encoding,
            interning, tid structures), ``"precount"`` (high-level
            projections and pre-count tables), ``"join"`` (candidate
            generation), ``"count"`` (support counting), and ``"prune"``
            (pre-count pruning); the measure builders add ``"membership"``
            (record-id grouping), ``"aggregate"`` (path aggregation /
            record scanning), ``"materialize"`` (measure derivation and
            cell assembly), and ``"exceptions"`` (the per-cell holistic
            exception pass).  Phases that never ran are absent.
    """

    candidates_per_length: Counter = field(default_factory=Counter)
    frequent_per_length: Counter = field(default_factory=Counter)
    pruned: Counter = field(default_factory=Counter)
    scans: int = 0
    precounted_patterns: int = 0
    elapsed_seconds: float = 0.0
    phase_seconds: dict[str, float] = field(default_factory=dict)

    def add_phase(self, phase: str, seconds: float) -> None:
        """Accumulate *seconds* of wall-clock time into *phase*'s bucket."""
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    def counters_equal(self, other: "MiningStats") -> bool:
        """Equality of everything except wall-clock timings.

        This is the parity contract between counting kernels: two runs of
        the same algorithm with different kernels must count, generate,
        prune, and keep exactly the same patterns — only their timings
        may differ.
        """
        return (
            self.candidates_per_length == other.candidates_per_length
            and self.frequent_per_length == other.frequent_per_length
            and self.pruned == other.pruned
            and self.scans == other.scans
            and self.precounted_patterns == other.precounted_patterns
        )

    @property
    def total_candidates(self) -> int:
        """Total candidates counted across all lengths."""
        return sum(self.candidates_per_length.values())

    @property
    def total_frequent(self) -> int:
        """Total frequent patterns found across all lengths."""
        return sum(self.frequent_per_length.values())

    @property
    def max_length(self) -> int:
        """Longest pattern length for which candidates were counted."""
        return max(self.candidates_per_length, default=0)

    def merge(self, other: "MiningStats") -> None:
        """Fold another run's counters into this one (Cubing sums per-cell)."""
        self.candidates_per_length.update(other.candidates_per_length)
        self.frequent_per_length.update(other.frequent_per_length)
        self.pruned.update(other.pruned)
        self.scans += other.scans
        self.precounted_patterns += other.precounted_patterns
        self.elapsed_seconds += other.elapsed_seconds
        for phase, seconds in other.phase_seconds.items():
            self.add_phase(phase, seconds)

    def as_rows(self) -> list[tuple[int, int, int]]:
        """(length, candidates, frequent) rows, length ascending."""
        lengths = sorted(
            set(self.candidates_per_length) | set(self.frequent_per_length)
        )
        return [
            (
                k,
                self.candidates_per_length.get(k, 0),
                self.frequent_per_length.get(k, 0),
            )
            for k in lengths
        ]
