"""Star-tree iceberg cubing (Xin, Han, Li & Wah [20], as cited in §5.2).

Section 5.2 notes the cubing baseline can sit on "BUC [4] or Star Cubing
[20]" — any iceberg cuber that proceeds from high abstraction levels to
low.  This module provides the star-tree flavour as a second backend:

1. a **star table** pass replaces every dimension value that cannot reach
   the iceberg threshold *at its most specific level* with the star value
   ``*`` (such values can never label a frequent cell, at any level, by
   the apriori property on the item lattice);
2. the compressed records then feed the same high-to-low partition
   refinement as BUC, but over a far smaller value domain — on skewed
   data most of the long tail collapses into stars before any recursion.

The output is identical to :func:`repro.mining.buc.buc_iceberg_cells`
(the test-suite cross-checks them); the win is the pre-compression, which
is most visible on high-cardinality, highly-skewed dimensions.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterator

from repro.core.flowgraph_exceptions import resolve_min_support
from repro.core.hierarchy import ANY
from repro.core.lattice import ItemLevel
from repro.core.path_database import PathDatabase
from repro.mining.buc import IcebergCell

__all__ = ["star_table", "star_iceberg_cells"]


def star_table(
    database: PathDatabase, threshold: int
) -> list[tuple[tuple[str, ...], int]]:
    """The star-reduction of the database's dimension columns.

    Returns ``(reduced dims, record id)`` rows where every leaf value with
    support below *threshold* is replaced by its nearest ancestor that
    clears the threshold (ultimately ``*``).  Rolling an infrequent value
    up is lossless for iceberg cells: no frequent cell can name it.
    """
    hierarchies = database.schema.dimensions
    # Support of every concept, per dimension, at every level.
    support: list[Counter] = [Counter() for _ in hierarchies]
    for record in database:
        for d, (hierarchy, value) in enumerate(zip(hierarchies, record.dims)):
            for concept in hierarchy.ancestors(value, include_self=True):
                support[d][concept] += 1

    def reduce(d: int, value: str) -> str:
        hierarchy = hierarchies[d]
        for concept in hierarchy.ancestors(value, include_self=True):
            if concept == ANY or support[d][concept] >= threshold:
                return concept
        return ANY

    return [
        (
            tuple(reduce(d, value) for d, value in enumerate(record.dims)),
            record.record_id,
        )
        for record in database
    ]


def star_iceberg_cells(
    database: PathDatabase,
    min_support: float,
) -> Iterator[IcebergCell]:
    """Enumerate iceberg cells via star-reduction + partition refinement.

    Produces exactly the cells of
    :func:`~repro.mining.buc.buc_iceberg_cells` (same keys, same member
    ids), in a possibly different order.
    """
    threshold = resolve_min_support(min_support, len(database))
    if len(database) < threshold:
        return
    hierarchies = database.schema.dimensions
    reduced = star_table(database, threshold)
    dims = [row[0] for row in reduced]
    record_ids = [row[1] for row in reduced]

    n = len(hierarchies)
    yield from _refine(
        0,
        [0] * n,
        ["*"] * n,
        list(range(len(reduced))),
        hierarchies,
        dims,
        record_ids,
        threshold,
    )


def _refine(
    dim: int,
    levels: list[int],
    key: list[str],
    rows: list[int],
    hierarchies,
    dims,
    record_ids,
    threshold: int,
) -> Iterator[IcebergCell]:
    """BUC-style refinement over the star-reduced columns.

    A star-reduced value sits at the level of its surviving ancestor, so
    partitioning at level ``l+1`` groups reduced values by their ancestor
    at that level; records whose value was starred above ``l+1`` fall out
    of every named partition (they can only support ``*`` cells, which is
    exactly what the star reduction proved).
    """
    yield (
        ItemLevel(levels),
        tuple(key),
        tuple(record_ids[i] for i in rows),
    )
    for d in range(dim, len(hierarchies)):
        hierarchy = hierarchies[d]
        level = levels[d]
        if level >= hierarchy.depth:
            continue
        partitions: dict[str, list[int]] = {}
        for i in rows:
            value = dims[i][d]
            if value == ANY or hierarchy.level_of(value) < level + 1:
                continue  # starred out: supports no cell at this depth
            partitions.setdefault(
                hierarchy.ancestor_at_level(value, level + 1), []
            ).append(i)
        previous_key = key[d]
        for value, members in partitions.items():
            if len(members) < threshold:
                continue
            levels[d] += 1
            key[d] = value
            yield from _refine(
                d, levels, key, members, hierarchies, dims, record_ids, threshold
            )
            levels[d] -= 1
            key[d] = previous_key
