"""OLAP queries over a materialised flowcube (Section 4 intro).

:class:`FlowCubeQuery` wraps a :class:`~repro.core.flowcube.FlowCube` with
the classic operations, phrased in flowcube terms:

* **slice/dice** — fix dimension values (at any abstraction level) and get
  the matching cells;
* **roll-up / drill-down** — move a cell's coordinates one step along the
  item lattice, or switch its path abstraction level (the path-lattice
  direction is unique to flowcubes);
* **measure access** — the flowgraph of any coordinates, with redundancy
  inference applied.

Dimension values are given by *name* (``product="outerwear"``); the query
derives the item level from where each named value sits in its hierarchy.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.flowcube import Cell, FlowCube
from repro.core.flowgraph import FlowGraph
from repro.core.lattice import ItemLevel, PathLevel
from repro.errors import QueryError

__all__ = ["FlowCubeQuery"]


class FlowCubeQuery:
    """Fluent OLAP access to a flowcube.

    Works over any cube-shaped object: the in-memory
    :class:`~repro.core.flowcube.FlowCube` or the persistent
    :class:`~repro.store.cube_store.CubeStore` (which has no ``database``
    but exposes its ``schema`` directly) — both provide the same
    ``cuboids`` / ``cell`` / ``flowgraph_for`` lookup surface.
    """

    def __init__(self, cube: FlowCube) -> None:
        self.cube = cube
        database = getattr(cube, "database", None)
        self._schema = database.schema if database is not None else cube.schema

    # ------------------------------------------------------------------
    # coordinate helpers
    # ------------------------------------------------------------------
    def coordinates(self, **dims: str) -> tuple[ItemLevel, tuple[str, ...]]:
        """Resolve named dimension values into (item level, cell key).

        Unmentioned dimensions are ``*``.  Example::

            level, key = q.coordinates(product="outerwear", brand="nike")
        """
        levels = [0] * self._schema.n_dimensions
        key = ["*"] * self._schema.n_dimensions
        for name, value in dims.items():
            index = self._schema.dimension_index(name)
            hierarchy = self._schema.dimensions[index]
            if value not in hierarchy:
                raise QueryError(
                    f"{value!r} is not a {name!r} concept"
                )
            levels[index] = hierarchy.level_of(value)
            key[index] = value
        return ItemLevel(levels), tuple(key)

    def default_path_level(self) -> PathLevel:
        """The most detailed materialised path level."""
        return max(
            self.cube.path_lattice,
            key=lambda lv: (lv.duration_level, len(lv.view.concepts)),
        )

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------
    def cell(self, path_level: PathLevel | None = None, **dims: str) -> Cell:
        """The cell at the named coordinates.

        Raises :class:`~repro.errors.QueryError` when the cell fell below
        the iceberg threshold (it was never materialised).
        """
        item_level, key = self.coordinates(**dims)
        level = path_level or self.default_path_level()
        if not self.cube.has_cuboid(item_level, level):
            raise QueryError(
                f"cuboid for levels {item_level.levels!r} was not materialised "
                "(adjust the materialisation plan)"
            )
        cuboid = self.cube.cuboid(item_level, level)
        if key not in cuboid:
            raise QueryError(
                f"cell {key!r} is below the iceberg threshold "
                f"(δ={self.cube.min_support}) or outside the data"
            )
        return cuboid.cell(key)

    def flowgraph(
        self, path_level: PathLevel | None = None, **dims: str
    ) -> FlowGraph:
        """The measure at the named coordinates, with redundancy inference."""
        item_level, key = self.coordinates(**dims)
        level = path_level or self.default_path_level()
        return self.cube.flowgraph_for(item_level, key, level)

    def slice(
        self, path_level: PathLevel | None = None, **dims: str
    ) -> Iterator[Cell]:
        """All materialised cells matching the named values.

        A cell matches when, on every named dimension, its value equals the
        given concept or is a descendant of it; other dimensions may hold
        anything at any level.
        """
        level = path_level or self.default_path_level()
        constraints: list[tuple[int, str]] = []
        for name, value in dims.items():
            index = self._schema.dimension_index(name)
            if value not in self._schema.dimensions[index]:
                raise QueryError(f"{value!r} is not a {name!r} concept")
            constraints.append((index, value))
        for cuboid in self.cube.cuboids:
            if cuboid.path_level != level:
                continue
            for cell in cuboid:
                if all(
                    self._matches(index, value, cell.key[index])
                    for index, value in constraints
                ):
                    yield cell

    def _matches(self, dim: int, wanted: str, actual: str) -> bool:
        if actual == "*":
            return wanted == "*"
        hierarchy = self._schema.dimensions[dim]
        return actual == wanted or hierarchy.is_ancestor(wanted, actual)

    # ------------------------------------------------------------------
    # navigation
    # ------------------------------------------------------------------
    def roll_up(self, cell: Cell, dimension: str) -> Cell:
        """The parent cell with *dimension* one hierarchy level higher."""
        index = self._schema.dimension_index(dimension)
        if cell.item_level[index] == 0:
            raise QueryError(f"dimension {dimension!r} is already at '*'")
        hierarchy = self._schema.dimensions[index]
        levels = list(cell.item_level.levels)
        key = list(cell.key)
        levels[index] -= 1
        key[index] = (
            "*" if levels[index] == 0
            else hierarchy.ancestor_at_level(key[index], levels[index])
        )
        return self.cube.cell(
            ItemLevel(levels), tuple(key), cell.path_level
        )

    def drill_down(self, cell: Cell, dimension: str) -> list[Cell]:
        """All materialised children with *dimension* one level deeper."""
        index = self._schema.dimension_index(dimension)
        hierarchy = self._schema.dimensions[index]
        if cell.item_level[index] >= hierarchy.depth:
            raise QueryError(f"dimension {dimension!r} is already at leaves")
        levels = list(cell.item_level.levels)
        levels[index] += 1
        child_level = ItemLevel(levels)
        if not self.cube.has_cuboid(child_level, cell.path_level):
            raise QueryError(
                f"child cuboid {child_level.levels!r} was not materialised"
            )
        cuboid = self.cube.cuboid(child_level, cell.path_level)
        children = (
            hierarchy.concepts_at_level(1)
            if cell.key[index] == "*"
            else hierarchy.children(cell.key[index])
        )
        out = []
        for child_value in children:
            key = list(cell.key)
            key[index] = child_value
            if tuple(key) in cuboid:
                out.append(cuboid.cell(tuple(key)))
        return out

    def change_path_level(self, cell: Cell, path_level: PathLevel) -> Cell:
        """The same item coordinates at another path abstraction level."""
        return self.cube.cell(cell.item_level, cell.key, path_level)
