"""OLAP queries over a materialised flowcube (Section 4 intro).

:class:`FlowCubeQuery` wraps a :class:`~repro.core.flowcube.FlowCube` with
the classic operations, phrased in flowcube terms:

* **slice/dice** — fix dimension values (at any abstraction level) and get
  the matching cells;
* **roll-up / drill-down** — move a cell's coordinates one step along the
  item lattice, or switch its path abstraction level (the path-lattice
  direction is unique to flowcubes);
* **measure access** — the flowgraph of any coordinates, with redundancy
  inference applied.

Dimension values are given by *name* (``product="outerwear"``); the query
derives the item level from where each named value sits in its hierarchy.

The read path is index-first: slice/dice runs on the bitmap key catalogs
of :mod:`repro.perf.query_kernel` (predicates answered by AND over
per-(dimension, concept) masks before any cell is materialised), answers
are memoised in a :class:`~repro.perf.query_kernel.QueryCache`, and —
with ``derive=True`` — non-materialised coordinates are answered by the
roll-up planner (:mod:`repro.query.planner`) instead of raising.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.flowcube import Cell, CellKey, Cuboid, FlowCube
from repro.core.flowgraph import FlowGraph
from repro.core.lattice import ItemLevel, PathLevel
from repro.errors import QueryError
from repro.perf.query_kernel import CatalogPool, CuboidKeyCatalog, QueryCache
from repro.query.planner import (
    DerivationPlan,
    derive_cell,
    derive_cuboid,
    plan_derivation,
)

__all__ = ["FlowCubeQuery", "QUERY_KERNELS"]

#: Slice kernels: ``"index"`` answers predicates from bitmap key catalogs
#: before touching cells; ``"scan"`` is the cell-at-a-time reference.
QUERY_KERNELS = ("index", "scan")


class FlowCubeQuery:
    """Fluent OLAP access to a flowcube.

    Works over any cube-shaped object: the in-memory
    :class:`~repro.core.flowcube.FlowCube` or the persistent
    :class:`~repro.store.cube_store.CubeStore` (which has no ``database``
    but exposes its ``schema`` directly) — both provide the same
    ``cuboids`` / ``cell`` / ``flowgraph_for`` lookup surface.

    Args:
        cube: The flowcube (or cube store) to query.
        kernel: Slice kernel, one of :data:`QUERY_KERNELS`.  The default
            ``"index"`` evaluates key predicates on bitmap catalogs built
            from the cuboid key index, so only matching cells are ever
            materialised; ``"scan"`` re-checks every cell (the seed
            behaviour, kept as the byte-identical reference).
        derive: When true, coordinates whose cuboid was not materialised
            are answered by the roll-up planner — merged from the
            cheapest materialised descendant cuboid — instead of raising
            :class:`~repro.errors.QueryError`.
        derive_exceptions: Re-mine (ε, δ) exceptions on derived cells.
            Requires source cells that still carry their paths (in-memory
            cubes); exceptions are holistic (Lemma 4.3), so stored cells —
            which persist only the measure — cannot support it.
        cache_size: Capacity of the per-query-object answer cache.
        catalogs: Optional shared :class:`CatalogPool`.  A server keeps
            one pool per tenant so the bitmap key catalogs survive across
            requests (and query objects) instead of being rebuilt; when
            omitted, catalogs are memoised per query object as before.

    One query object may be shared by concurrent threads (the serving
    layer reuses a single façade per tenant): the answer cache and the
    catalog pool lock internally, the cube's mutation ``version`` is
    folded into every cache key, and the remaining memos (dimension
    indices, derivation plans) are version-independent values where a
    racing double-compute is idempotent.
    """

    def __init__(
        self,
        cube: FlowCube,
        kernel: str = "index",
        derive: bool = False,
        derive_exceptions: bool = False,
        cache_size: int = 128,
        catalogs: CatalogPool | None = None,
    ) -> None:
        if kernel not in QUERY_KERNELS:
            raise QueryError(
                f"unknown query kernel {kernel!r}; expected one of "
                f"{QUERY_KERNELS}"
            )
        self.cube = cube
        self.kernel = kernel
        self.derive = derive
        self.derive_exceptions = derive_exceptions
        database = getattr(cube, "database", None)
        self._schema = database.schema if database is not None else cube.schema
        self._hierarchies = self._schema.dimensions
        self._dims: dict[str, int] = {}
        self._default_path_level: PathLevel | None = None
        #: (item level, path level) -> (cell count, key catalog); used
        #: only when no shared pool was given.
        self._catalogs: dict[
            tuple[ItemLevel, PathLevel], tuple[int, CuboidKeyCatalog]
        ] = {}
        #: (cube version, item level, path level) -> plan; the version in
        #: the key keeps plans from outliving a store mutation.
        self._plans: dict[tuple, DerivationPlan | None] = {}
        self._cache = QueryCache(cache_size)
        self._pool = catalogs

    # ------------------------------------------------------------------
    # coordinate helpers
    # ------------------------------------------------------------------
    def _dim_index(self, name: str) -> int:
        """``schema.dimension_index(name)``, memoised per query object."""
        index = self._dims.get(name)
        if index is None:
            index = self._schema.dimension_index(name)
            self._dims[name] = index
        return index

    def coordinates(self, **dims: str) -> tuple[ItemLevel, tuple[str, ...]]:
        """Resolve named dimension values into (item level, cell key).

        Unmentioned dimensions are ``*``.  Example::

            level, key = q.coordinates(product="outerwear", brand="nike")
        """
        levels = [0] * self._schema.n_dimensions
        key = ["*"] * self._schema.n_dimensions
        for name, value in dims.items():
            index = self._dim_index(name)
            hierarchy = self._hierarchies[index]
            if value not in hierarchy:
                raise QueryError(
                    f"{value!r} is not a {name!r} concept"
                )
            levels[index] = hierarchy.level_of(value)
            key[index] = value
        return ItemLevel(levels), tuple(key)

    def default_path_level(self) -> PathLevel:
        """The most detailed materialised path level (computed once)."""
        if self._default_path_level is None:
            self._default_path_level = max(
                self.cube.path_lattice,
                key=lambda lv: (lv.duration_level, len(lv.view.concepts)),
            )
        return self._default_path_level

    def _version(self) -> object:
        """The cube's mutation counter, folded into every cache key."""
        return getattr(self.cube, "version", 0)

    # ------------------------------------------------------------------
    # derivation (roll-up planner)
    # ------------------------------------------------------------------
    def plan_for(
        self, item_level: ItemLevel, path_level: PathLevel | None = None
    ) -> DerivationPlan | None:
        """The planner's choice for a coordinate (memoised), or ``None``."""
        level = path_level or self.default_path_level()
        coords = (self._version(), item_level, level)
        if coords not in self._plans:
            self._plans[coords] = plan_derivation(self.cube, item_level, level)
        return self._plans[coords]

    def _require_plan(
        self, item_level: ItemLevel, level: PathLevel
    ) -> DerivationPlan:
        plan = self.plan_for(item_level, level)
        if plan is None:
            raise QueryError(
                f"cuboid for levels {item_level.levels!r} was not "
                "materialised and no materialised descendant cuboid can "
                "derive it"
            )
        return plan

    def _derived_cell(
        self, item_level: ItemLevel, key: CellKey, level: PathLevel
    ) -> Cell:
        cache_key = ("cell", self._version(), item_level, key, level)
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached
        plan = self._require_plan(item_level, level)
        cell = derive_cell(
            self.cube, plan, key, mine_exceptions=self.derive_exceptions
        )
        self._cache.note_derivation()
        self._cache.put(cache_key, cell)
        return cell

    def derived_cuboid(
        self, item_level: ItemLevel, path_level: PathLevel | None = None
    ) -> Cuboid:
        """The whole cuboid at a non-materialised coordinate, derived.

        Merged from the planner's chosen source with the build-time
        roll-up grouping; memoised per coordinate.  See
        :mod:`repro.query.planner` for the exactness contract.
        """
        level = path_level or self.default_path_level()
        cache_key = ("cuboid", self._version(), item_level, level)
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached
        plan = self._require_plan(item_level, level)
        cuboid = derive_cuboid(
            self.cube, plan, mine_exceptions=self.derive_exceptions
        )
        self._cache.note_derivation()
        self._cache.put(cache_key, cuboid)
        return cuboid

    def _cell_at(
        self, item_level: ItemLevel, key: CellKey, level: PathLevel
    ) -> Cell:
        """Cell lookup that falls back to derivation when enabled."""
        if self.cube.has_cuboid(item_level, level):
            return self.cube.cell(item_level, key, level)
        if self.derive:
            return self._derived_cell(item_level, key, level)
        return self.cube.cell(item_level, key, level)  # raises CubeError

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------
    def cell(self, path_level: PathLevel | None = None, **dims: str) -> Cell:
        """The cell at the named coordinates.

        Raises :class:`~repro.errors.QueryError` when the cell fell below
        the iceberg threshold (it was never materialised).  With
        ``derive=True`` a missing *cuboid* is answered by the roll-up
        planner instead.
        """
        item_level, key = self.coordinates(**dims)
        level = path_level or self.default_path_level()
        if not self.cube.has_cuboid(item_level, level):
            if self.derive:
                return self._derived_cell(item_level, key, level)
            raise QueryError(
                f"cuboid for levels {item_level.levels!r} was not materialised "
                "(adjust the materialisation plan)"
            )
        cuboid = self.cube.cuboid(item_level, level)
        if key not in cuboid:
            raise QueryError(
                f"cell {key!r} is below the iceberg threshold "
                f"(δ={self.cube.min_support}) or outside the data"
            )
        return cuboid.cell(key)

    def flowgraph(
        self, path_level: PathLevel | None = None, **dims: str
    ) -> FlowGraph:
        """The measure at the named coordinates, with redundancy inference."""
        item_level, key = self.coordinates(**dims)
        level = path_level or self.default_path_level()
        cache_key = ("flowgraph", self._version(), item_level, key, level)
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached
        if self.derive and not self.cube.has_cuboid(item_level, level):
            graph = self._derived_cell(item_level, key, level).flowgraph
        else:
            graph = self.cube.flowgraph_for(item_level, key, level)
        self._cache.put(cache_key, graph)
        return graph

    def slice(
        self, path_level: PathLevel | None = None, **dims: str
    ) -> Iterator[Cell]:
        """All materialised cells matching the named values.

        A cell matches when, on every named dimension, its value equals the
        given concept or is a descendant of it; other dimensions may hold
        anything at any level.  With the default ``"index"`` kernel the
        predicate is answered from the cuboid key catalogs, so cells that
        do not match are never materialised (no cell-file IO over a
        :class:`~repro.store.cube_store.CubeStore`).
        """
        yield from self.slice_cells(path_level, **dims)

    def slice_cells(
        self, path_level: PathLevel | None = None, **dims: str
    ) -> tuple[Cell, ...]:
        """:meth:`slice` as a fully materialised (and cached) tuple.

        The serving layer prefers this form: the whole answer is computed
        against one consistent cube version and memoised, so concurrent
        requests can never observe a half-built entry.
        """
        level = path_level or self.default_path_level()
        constraints: list[tuple[int, str]] = []
        for name, value in dims.items():
            index = self._dim_index(name)
            if value not in self._hierarchies[index]:
                raise QueryError(f"{value!r} is not a {name!r} concept")
            constraints.append((index, value))
        cache_key = (
            "slice",
            self._version(),
            level,
            tuple(sorted(constraints)),
            self.kernel,
        )
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached
        out = tuple(self._slice_cells(level, constraints))
        self._cache.put(cache_key, out)
        return out

    def _slice_cells(
        self, level: PathLevel, constraints: list[tuple[int, str]]
    ) -> Iterator[Cell]:
        for cuboid in self.cube.cuboids:
            if cuboid.path_level != level:
                continue
            if self.kernel == "index":
                catalog = self._catalog(cuboid)
                for key in catalog.matching_keys(constraints):
                    yield cuboid.cell(key)
            else:
                for cell in cuboid:
                    if all(
                        self._matches(index, value, cell.key[index])
                        for index, value in constraints
                    ):
                        yield cell

    def _catalog(self, cuboid) -> CuboidKeyCatalog:
        """The cuboid's bitmap key catalog, rebuilt when its size changes.

        With a shared :class:`CatalogPool` the lookup (and invalidation,
        via the cube version) happens in the pool, so catalogs are reused
        across every query object mounted on the same cube.
        """
        if self._pool is not None:
            return self._pool.catalog(
                cuboid, self._hierarchies, self._version()
            )
        coords = (cuboid.item_level, cuboid.path_level)
        n_cells = len(cuboid)
        cached = self._catalogs.get(coords)
        if cached is not None and cached[0] == n_cells:
            return cached[1]
        keys = getattr(cuboid, "keys", None)
        if keys is None:  # in-memory Cuboid
            keys = tuple(cuboid.cells)
        # Store cuboids hand over their precomputed value masks (lazy
        # spans over the mmap'd index), sparing the per-cell index pass.
        catalog = CuboidKeyCatalog(
            keys, self._hierarchies, getattr(cuboid, "value_masks", None)
        )
        self._catalogs[coords] = (n_cells, catalog)
        return catalog

    def _matches(self, dim: int, wanted: str, actual: str) -> bool:
        if actual == "*":
            return wanted == "*"
        hierarchy = self._hierarchies[dim]
        return actual == wanted or hierarchy.is_ancestor(wanted, actual)

    # ------------------------------------------------------------------
    # navigation
    # ------------------------------------------------------------------
    def roll_up(self, cell: Cell, dimension: str) -> Cell:
        """The parent cell with *dimension* one hierarchy level higher."""
        index = self._dim_index(dimension)
        if cell.item_level[index] == 0:
            raise QueryError(f"dimension {dimension!r} is already at '*'")
        hierarchy = self._hierarchies[index]
        levels = list(cell.item_level.levels)
        key = list(cell.key)
        levels[index] -= 1
        key[index] = (
            "*" if levels[index] == 0
            else hierarchy.ancestor_at_level(key[index], levels[index])
        )
        return self._cell_at(ItemLevel(levels), tuple(key), cell.path_level)

    def drill_down(self, cell: Cell, dimension: str) -> list[Cell]:
        """All materialised children with *dimension* one level deeper."""
        index = self._dim_index(dimension)
        hierarchy = self._hierarchies[index]
        if cell.item_level[index] >= hierarchy.depth:
            raise QueryError(f"dimension {dimension!r} is already at leaves")
        levels = list(cell.item_level.levels)
        levels[index] += 1
        child_level = ItemLevel(levels)
        if self.cube.has_cuboid(child_level, cell.path_level):
            cuboid = self.cube.cuboid(child_level, cell.path_level)
        elif self.derive:
            cuboid = self.derived_cuboid(child_level, cell.path_level)
        else:
            raise QueryError(
                f"child cuboid {child_level.levels!r} was not materialised"
            )
        children = (
            hierarchy.concepts_at_level(1)
            if cell.key[index] == "*"
            else hierarchy.children(cell.key[index])
        )
        out = []
        for child_value in children:
            key = list(cell.key)
            key[index] = child_value
            if tuple(key) in cuboid:
                out.append(cuboid.cell(tuple(key)))
        return out

    def change_path_level(self, cell: Cell, path_level: PathLevel) -> Cell:
        """The same item coordinates at another path abstraction level."""
        return self._cell_at(cell.item_level, cell.key, path_level)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def cache_stats(self) -> dict[str, float | int]:
        """The query cache's hit/miss/eviction/derivation counters."""
        return self._cache.stats()
