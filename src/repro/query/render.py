"""Flowgraph rendering — the Figure 3/4 views.

Two renderers: an indented ASCII tree for terminals (examples and the
quickstart print these) and Graphviz DOT for documentation.
"""

from __future__ import annotations

import io

from repro.core.flowgraph import TERMINATE, FlowGraph, FlowGraphNode

__all__ = ["render_text", "render_dot"]


def _format_distribution(dist: dict[str, float], limit: int = 4) -> str:
    ordered = sorted(dist.items(), key=lambda kv: -kv[1])[:limit]
    body = ", ".join(f"{k}:{v:.2f}" for k, v in ordered)
    suffix = ", …" if len(dist) > limit else ""
    return "{" + body + suffix + "}"


def render_text(
    graph: FlowGraph,
    show_durations: bool = True,
    show_exceptions: bool = True,
) -> str:
    """An indented tree with per-node transition/duration distributions.

    Example output (the paper's Figure 3 data)::

        factory  n=8 dur={10:0.62, 5:0.38}
        ├─0.65→ dist center ...
        └─0.35→ truck ...
    """
    out = io.StringIO()

    def walk(node: FlowGraphNode, indent: str) -> None:
        transitions = sorted(
            node.transition_distribution().items(), key=lambda kv: -kv[1]
        )
        edges = [(t, p) for t, p in transitions if t != TERMINATE]
        terminate = dict(transitions).get(TERMINATE, 0.0)
        if terminate > 0:
            out.write(f"{indent}  (terminate: {terminate:.2f})\n")
        for i, (target, probability) in enumerate(edges):
            connector = "└─" if i == len(edges) - 1 else "├─"
            child = node.children[target]
            duration = (
                f" dur={_format_distribution(child.duration_distribution())}"
                if show_durations
                else ""
            )
            out.write(
                f"{indent}{connector}{probability:.2f}→ {target} "
                f"n={child.count}{duration}\n"
            )
            walk(child, indent + ("   " if i == len(edges) - 1 else "│  "))

    for root in graph.roots:
        share = root.count / graph.n_paths if graph.n_paths else 0.0
        duration = (
            f" dur={_format_distribution(root.duration_distribution())}"
            if show_durations
            else ""
        )
        out.write(f"{root.location}  n={root.count} start={share:.2f}{duration}\n")
        walk(root, "")
    if show_exceptions and graph.exceptions:
        out.write(f"exceptions ({len(graph.exceptions)}):\n")
        for exception in graph.exceptions:
            out.write(f"  - {exception}\n")
    return out.getvalue()


def render_dot(graph: FlowGraph, name: str = "flowgraph") -> str:
    """Graphviz DOT: nodes labelled with durations, edges with probabilities."""
    out = io.StringIO()
    out.write(f'digraph "{name}" {{\n  rankdir=LR;\n  node [shape=box];\n')

    def node_id(prefix: tuple[str, ...]) -> str:
        return '"' + "/".join(prefix).replace('"', "'") + '"'

    for node in graph.nodes():
        duration = _format_distribution(node.duration_distribution())
        label = f"{node.location}\\nn={node.count}\\n{duration}"
        out.write(f'  {node_id(node.prefix)} [label="{label}"];\n')
        for target, probability in node.transition_distribution().items():
            if target == TERMINATE:
                continue
            child = node.children[target]
            out.write(
                f"  {node_id(node.prefix)} -> {node_id(child.prefix)} "
                f'[label="{probability:.2f}"];\n'
            )
    out.write("}\n")
    return out.getvalue()
