"""Merge-based roll-up planner: answer non-materialised coordinates.

The flowcube never materialises its full item lattice — partial
materialisation plans (:mod:`repro.core.materialization`) keep a minimum
interesting layer, an observation layer, and a drill chain between them.
The seed query layer turned every other coordinate into a hard
:class:`~repro.errors.QueryError`.  But the flowgraph measure is algebraic
(Lemma 4.2): an ancestor cell's path multiset is the disjoint union of its
descendants', so — exactly as Gray et al.'s Data Cube derives ROLLUP
answers from the nearest materialised group-by — a missing cuboid can be
*derived* at query time by merging a materialised descendant's cells with
:meth:`~repro.core.flowgraph.FlowGraph.merge`.

:func:`plan_derivation` picks the cheapest materialised source: among the
cuboids at the *same path level* whose item level is a strict descendant
of the target, it minimises ``lattice distance × cell count`` — the cell
count comes from the store index (or the in-memory cuboid), so planning
does zero cell-file IO.  :func:`derive_cuboid` / :func:`derive_cell`
execute a plan with the same grouping the build-time roll-up engine uses
(:mod:`repro.perf.measure_rollup`): record ids concatenate and are
sorted, flowgraphs merge, weighted path multisets add, and the iceberg
threshold δ is re-applied to the derived groups.

Exactness contract
------------------
A derived answer always equals a direct build of the target cuboid over
the *records covered by the source's materialised cells*.  When the
source cuboid is unpruned — its cells cover every record, e.g. whenever
the resolved iceberg threshold is 1 — that is the whole database and the
derived cuboid is byte-identical (``cube_to_json``) to a directly built
one.  Under a real iceberg threshold the source may have dropped
sub-threshold children, in which case derived counts are lower bounds;
:attr:`DerivationPlan.exact` reports which regime a plan is in (``None``
when the store cannot tell because the total record count is unknown).
The path level is never re-aggregated: persisted cells drop their raw
paths, so only the item lattice is derivable — same-path-level sources
only.

Exceptions are holistic (Lemma 4.3) and cannot be merged; they are
re-mined from the merged weighted multiset when every source cell still
carries its paths (in-memory cubes), and omitted otherwise (stored cells
persist only the measure).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.flowcube import Cell, CellKey, Cuboid
from repro.core.flowgraph import FlowGraph
from repro.core.flowgraph_exceptions import (
    mine_exceptions_weighted,
    resolve_min_support,
)
from repro.core.lattice import ItemLevel, PathLevel
from repro.errors import QueryError

__all__ = [
    "DerivationPlan",
    "plan_derivation",
    "derive_cuboid",
    "derive_cell",
]


@dataclass(frozen=True)
class DerivationPlan:
    """A chosen way to answer one non-materialised cuboid coordinate."""

    #: The coordinate being answered.
    item_level: ItemLevel
    path_level: PathLevel
    #: The materialised strict descendant the answer merges from.
    source: ItemLevel
    #: Item-lattice distance from source to target (levels rolled up).
    distance: int
    #: Number of materialised cells in the source cuboid (index count).
    source_cells: int
    #: ``distance × source_cells`` — the planner's minimisation objective.
    cost: int
    #: Resolved iceberg threshold re-applied to the derived groups.
    threshold: int
    #: Whether the derived answer is exactly a direct build of the target
    #: (source unpruned); ``None`` when the total record count is unknown.
    exact: bool | None


def _schema(cube):
    database = getattr(cube, "database", None)
    return database.schema if database is not None else cube.schema


def _cuboid_keys(cuboid) -> tuple[CellKey, ...]:
    """A cuboid's cell keys without materialising cells."""
    keys = getattr(cuboid, "keys", None)
    if keys is not None:  # StoredCuboid: straight off the index
        return keys
    return tuple(cuboid.cells)


def _cell_sizes(cube, item_level, path_level) -> dict[CellKey, int]:
    """Per-cell path counts for one cuboid, with zero cell-file IO."""
    sizes = getattr(cube, "cell_sizes", None)
    if sizes is not None:  # CubeStore: n_paths lives in the index
        return sizes(item_level, path_level)
    cuboid = cube.cuboid(item_level, path_level)
    return {cell.key: cell.n_paths for cell in cuboid}


def _total_records(cube, path_level: PathLevel) -> int | None:
    """The database size, or ``None`` when the cube cannot tell.

    An in-memory cube carries its database.  A store does not, but the
    apex cell ``(*, ..., *)`` — when materialised — aggregates every
    record, so its indexed ``n_paths`` is the database size.
    """
    database = getattr(cube, "database", None)
    if database is not None:
        return len(database)
    n_dims = _schema(cube).n_dimensions
    apex = ItemLevel([0] * n_dims)
    if cube.has_cuboid(apex, path_level):
        return _cell_sizes(cube, apex, path_level).get(("*",) * n_dims)
    return None


def plan_derivation(
    cube, item_level: ItemLevel, path_level: PathLevel
) -> DerivationPlan | None:
    """The cheapest plan answering ``⟨item_level, path_level⟩``, or ``None``.

    Candidates are the materialised cuboids at the same path level whose
    item level is a strict descendant of the target (their cells partition
    the target's records).  The cost of a candidate is its item-lattice
    distance times its cell count — merging a nearby, small cuboid beats
    re-grouping the base level — and everything is read from the cuboid
    index, so planning itself touches no cell files.
    """
    candidates: list[tuple[int, tuple[int, ...], int, int]] = []
    for cuboid in cube.cuboids:
        if cuboid.path_level != path_level:
            continue
        source = cuboid.item_level
        if source == item_level or not item_level.is_higher_or_equal(source):
            continue
        distance = sum(source.levels) - sum(item_level.levels)
        n_cells = len(cuboid)
        cost = distance * n_cells
        candidates.append((cost, source.levels, distance, n_cells))
    if not candidates:
        return None
    cost, source_levels, distance, n_cells = min(candidates)
    source = ItemLevel(source_levels)
    n_records = _total_records(cube, path_level)
    min_support = cube.min_support if cube.min_support is not None else 1
    covered = sum(_cell_sizes(cube, source, path_level).values())
    if n_records is None:
        threshold = resolve_min_support(min_support, covered)
        exact = None
    else:
        threshold = resolve_min_support(min_support, n_records)
        exact = covered == n_records
    return DerivationPlan(
        item_level=item_level,
        path_level=path_level,
        source=source,
        distance=distance,
        source_cells=n_cells,
        cost=cost,
        threshold=threshold,
        exact=exact,
    )


def _rollup_key(hierarchies, key: CellKey, target: ItemLevel) -> CellKey:
    return tuple(
        hierarchy.ancestor_at_level(value, level)
        for hierarchy, value, level in zip(hierarchies, key, target)
    )


def _derived_cell(
    cube,
    plan: DerivationPlan,
    parent_key: CellKey,
    children: list[Cell],
    mine_exceptions: bool,
) -> Cell:
    """Merge *children* into the derived cell at *parent_key* (Lemma 4.2)."""
    record_ids: list[int] = []
    for child in children:
        record_ids.extend(child.record_ids)
    graph = FlowGraph().merge(child.flowgraph for child in children)
    weighted: tuple = ()
    if all(child.paths for child in children):
        merged: dict = {}
        for child in children:
            for path, weight in child.paths:
                merged[path] = merged.get(path, 0) + weight
        weighted = tuple(merged.items())
    if mine_exceptions:
        if not weighted:
            raise QueryError(
                "cannot re-mine exceptions for a derived cell: the source "
                "cells no longer carry their paths (holistic measure, "
                "Lemma 4.3)"
            )
        mine_exceptions_weighted(
            graph,
            weighted,
            min_support=cube.min_support,
            min_deviation=cube.min_deviation,
        )
    return Cell(
        key=parent_key,
        item_level=plan.item_level,
        path_level=plan.path_level,
        record_ids=tuple(sorted(record_ids)),
        flowgraph=graph,
        paths=weighted,
    )


def derive_cuboid(
    cube, plan: DerivationPlan, mine_exceptions: bool = False
) -> Cuboid:
    """Execute *plan*: the whole derived cuboid, in build order.

    Children are grouped by their key rolled up to the target level, in
    source-cuboid order — the same first-seen order a direct build's
    record scan produces when the source is unpruned — and groups below
    the re-applied iceberg threshold are dropped.
    """
    hierarchies = _schema(cube).dimensions
    source_cuboid = cube.cuboid(plan.source, plan.path_level)
    groups: dict[CellKey, list[Cell]] = {}
    for child in source_cuboid:
        parent_key = _rollup_key(hierarchies, child.key, plan.item_level)
        groups.setdefault(parent_key, []).append(child)
    derived = Cuboid(plan.item_level, plan.path_level)
    for parent_key, children in groups.items():
        if sum(child.n_paths for child in children) < plan.threshold:
            continue  # iceberg condition, re-applied to the derived group
        derived.cells[parent_key] = _derived_cell(
            cube, plan, parent_key, children, mine_exceptions
        )
    return derived


def derive_cell(
    cube,
    plan: DerivationPlan,
    key: CellKey,
    mine_exceptions: bool = False,
) -> Cell:
    """Execute *plan* for a single cell.

    Source children are selected by rolling their *keys* up first — pure
    index arithmetic — so only the cells that actually merge into *key*
    are ever materialised.
    """
    hierarchies = _schema(cube).dimensions
    source_cuboid = cube.cuboid(plan.source, plan.path_level)
    child_keys = [
        child_key
        for child_key in _cuboid_keys(source_cuboid)
        if _rollup_key(hierarchies, child_key, plan.item_level) == key
    ]
    children = [source_cuboid.cell(child_key) for child_key in child_keys]
    if sum(child.n_paths for child in children) < plan.threshold:
        raise QueryError(
            f"derived cell {key!r} is below the iceberg threshold "
            f"(δ={cube.min_support}) or outside the data"
        )
    return _derived_cell(cube, plan, key, children, mine_exceptions)
