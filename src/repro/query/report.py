"""Analyst-facing flow reports — the intro's three questions, packaged.

:func:`flow_report` renders, for one cell of a flowcube:

1. the most typical paths with expected durations and lead times, plus
   the lead-time outliers (question 1);
2. the recorded (ε, δ) exceptions — the duration↔outcome correlations of
   question 2 are exactly the duration-conditioned exceptions;
3. optionally, the largest distribution shifts against a baseline
   flowgraph, e.g. last year's cube for the same coordinates
   (question 3).

Everything is plain text so reports drop into terminals, logs, and diffs.
"""

from __future__ import annotations

import io

from repro.core.flowcube import Cell
from repro.core.flowgraph import FlowGraph
from repro.query.analysis import (
    compare_flowgraphs,
    lead_time_deviations,
    typical_paths,
)

__all__ = ["flow_report"]


def flow_report(
    cell: Cell,
    baseline: FlowGraph | None = None,
    top_k: int = 3,
    z_threshold: float = 2.5,
) -> str:
    """A complete flow-analysis report for one flowcube cell.

    Args:
        cell: The cell to report on (needs its aggregated ``paths`` for
            the outlier section; cells from a compacted cube skip it).
        baseline: Optional historic flowgraph to contrast against.
        top_k: Typical paths / shifts to show.
        z_threshold: Outlier cut for lead times.
    """
    out = io.StringIO()
    key = ", ".join(cell.key)
    out.write(f"Flow report for cell ({key})\n")
    out.write(f"  paths aggregated: {cell.n_paths}\n")

    out.write("\n[1] Typical paths\n")
    for route in typical_paths(cell.flowgraph, top_k=top_k):
        locations = " → ".join(route.locations)
        out.write(
            f"  p={route.probability:.2f}  "
            f"lead≈{route.expected_lead_time:.1f}  {locations}\n"
        )

    if cell.paths:
        # cell.paths holds weighted (path, weight) pairs.
        numeric = all(
            duration == "*" or _is_number(duration)
            for path, _ in cell.paths
            for _, duration in path
        ) and any(
            duration != "*" for path, _ in cell.paths for _, duration in path
        )
        if numeric:
            out.write(f"\n[1b] Lead-time outliers (|z| ≥ {z_threshold:g})\n")
            outliers = lead_time_deviations(
                cell.flowgraph, list(cell.paths), z_threshold=z_threshold
            )
            if not outliers:
                out.write("  none\n")
            for path, z in outliers[:top_k]:
                total = sum(float(d) for _, d in path)
                route = " → ".join(location for location, _ in path)
                out.write(f"  z={z:+.1f}  total={total:g}  {route}\n")
    else:
        out.write("\n[1b] Lead-time outliers: unavailable (cube was compacted)\n")

    out.write("\n[2] Exceptions (conditional distribution shifts)\n")
    if not cell.flowgraph.exceptions:
        out.write("  none above ε at this δ\n")
    for exception in cell.flowgraph.exceptions[: top_k * 2]:
        out.write(f"  {exception}\n")
    remaining = len(cell.flowgraph.exceptions) - top_k * 2
    if remaining > 0:
        out.write(f"  … and {remaining} more\n")

    if baseline is not None:
        out.write("\n[3] Largest shifts vs baseline\n")
        for shift in compare_flowgraphs(cell.flowgraph, baseline, top_k=top_k):
            prefix = " → ".join(shift["prefix"])  # type: ignore[arg-type]
            out.write(
                f"  {prefix}: transitions Δ{shift['transition_shift']:.2f}, "
                f"durations Δ{shift['duration_shift']:.2f}"
            )
            if shift["note"]:
                out.write(f"  ({shift['note']})")
            out.write("\n")
    return out.getvalue()


def _is_number(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True
