"""OLAP querying, flow analysis, and rendering over flowcubes."""

from repro.query.analysis import (
    TypicalPath,
    compare_flowgraphs,
    duration_outcome_correlation,
    lead_time_deviations,
    typical_paths,
)
from repro.query.api import FlowCubeQuery
from repro.query.render import render_dot, render_text
from repro.query.report import flow_report

__all__ = [
    "FlowCubeQuery",
    "TypicalPath",
    "compare_flowgraphs",
    "duration_outcome_correlation",
    "flow_report",
    "lead_time_deviations",
    "render_dot",
    "render_text",
    "typical_paths",
]
