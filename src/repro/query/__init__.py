"""OLAP querying, flow analysis, and rendering over flowcubes."""

from repro.query.analysis import (
    TypicalPath,
    compare_flowgraphs,
    duration_outcome_correlation,
    lead_time_deviations,
    typical_paths,
)
from repro.query.api import QUERY_KERNELS, FlowCubeQuery
from repro.query.planner import (
    DerivationPlan,
    derive_cell,
    derive_cuboid,
    plan_derivation,
)
from repro.query.render import render_dot, render_text
from repro.query.report import flow_report

__all__ = [
    "QUERY_KERNELS",
    "DerivationPlan",
    "FlowCubeQuery",
    "TypicalPath",
    "compare_flowgraphs",
    "derive_cell",
    "derive_cuboid",
    "duration_outcome_correlation",
    "flow_report",
    "lead_time_deviations",
    "plan_derivation",
    "render_dot",
    "render_text",
    "typical_paths",
]
