"""Flow analysis on flowgraphs — the intro's motivating questions.

Question 1: "the most typical paths, with average duration at each stage
... and the most notable deviations that significantly increase total lead
time" → :func:`typical_paths`, :func:`lead_time_deviations`.

Question 2: correlations between stage durations and downstream outcomes →
:func:`duration_outcome_correlation` (the flowgraph's exceptions are
precisely these conditional shifts; this function quantifies one pair).

Question 3: contrasting two flowgraphs (e.g. 2006 vs 2005) →
:func:`compare_flowgraphs`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.aggregation import AggregatedPath
from repro.core.flowgraph import FlowGraph
from repro.core.similarity import total_variation
from repro.errors import QueryError

__all__ = [
    "TypicalPath",
    "typical_paths",
    "lead_time_deviations",
    "duration_outcome_correlation",
    "compare_flowgraphs",
]


@dataclass(frozen=True)
class TypicalPath:
    """One complete route through a flowgraph with its statistics."""

    locations: tuple[str, ...]
    probability: float
    expected_durations: tuple[float, ...]

    @property
    def expected_lead_time(self) -> float:
        """Expected end-to-end duration along this route."""
        return sum(self.expected_durations)


def _expected_duration(graph: FlowGraph, prefix: tuple[str, ...]) -> float:
    node = graph.node(prefix)
    expectation = 0.0
    for label, probability in node.duration_distribution().items():
        if label != "*":
            expectation += float(label) * probability
    return expectation


def typical_paths(graph: FlowGraph, top_k: int = 5) -> list[TypicalPath]:
    """The *top_k* most probable complete routes, most probable first."""
    if top_k < 1:
        raise QueryError(f"top_k must be >= 1, got {top_k}")
    routes = sorted(
        graph.enumerate_paths(), key=lambda pair: -pair[1]
    )[:top_k]
    return [
        TypicalPath(
            locations=locations,
            probability=probability,
            expected_durations=tuple(
                _expected_duration(graph, locations[: i + 1])
                for i in range(len(locations))
            ),
        )
        for locations, probability in routes
    ]


def _as_weighted(paths) -> list[tuple[AggregatedPath, int]]:
    """Normalise plain aggregated paths or ``(path, weight)`` pairs.

    Cells store their path multiset in weighted form (one entry per
    distinct aggregated path); the analysis functions also keep accepting
    plain path lists.  A plain path's second element is a stage tuple,
    never an ``int``, so the two shapes are unambiguous.
    """
    out: list[tuple[AggregatedPath, int]] = []
    for entry in paths:
        if (
            len(entry) == 2
            and isinstance(entry[1], int)
            and not isinstance(entry[1], bool)
        ):
            out.append((entry[0], entry[1]))
        else:
            out.append((entry, 1))
    return out


def lead_time_deviations(
    graph: FlowGraph,
    paths: list,
    z_threshold: float = 2.0,
) -> list[tuple[AggregatedPath, float]]:
    """Paths whose total lead time is an outlier for the cell.

    Accepts plain aggregated paths or the cell's weighted ``(path,
    weight)`` pairs; statistics weigh each distinct path by its
    multiplicity, so both forms give identical means and deviations.
    Returns ``(path, z_score)`` pairs with |z| ≥ *z_threshold*, most
    extreme first.  Requires numeric duration labels (a path level that
    keeps durations).
    """
    weighted = _as_weighted(paths)
    totals = []
    for path, _ in weighted:
        try:
            totals.append(sum(float(d) for _, d in path))
        except ValueError as exc:
            raise QueryError(
                "lead-time analysis needs numeric duration labels; "
                "use a path level that keeps durations"
            ) from exc
    n = sum(weight for _, weight in weighted)
    if n < 2:
        return []
    mean = sum(t * w for t, (_, w) in zip(totals, weighted)) / n
    variance = sum(
        w * (t - mean) ** 2 for t, (_, w) in zip(totals, weighted)
    ) / (n - 1)
    if variance == 0:
        return []
    std = variance ** 0.5
    flagged = [
        (path, (total - mean) / std)
        for (path, _), total in zip(weighted, totals)
        if abs(total - mean) / std >= z_threshold
    ]
    flagged.sort(key=lambda pair: -abs(pair[1]))
    return flagged


def duration_outcome_correlation(
    paths: list,
    at_location: str,
    long_stay: float,
    outcome_location: str,
) -> dict[str, float]:
    """P(outcome | long stay) vs P(outcome | short stay) at a location.

    Quantifies intro question 2's pattern ("time at quality control vs
    probability of return"): partitions the cell's paths by whether the
    stay at *at_location* exceeded *long_stay*, and compares the rate at
    which *outcome_location* is subsequently visited.

    Accepts plain aggregated paths or weighted ``(path, weight)`` pairs.
    Returns a dict with ``p_long``, ``p_short``, ``lift``, ``n_long``,
    ``n_short``.  Paths that never visit *at_location* are ignored.
    """
    n_long = n_short = hit_long = hit_short = 0
    for path, weight in _as_weighted(paths):
        for i, (location, duration) in enumerate(path):
            if location != at_location:
                continue
            try:
                stayed_long = float(duration) > long_stay
            except ValueError:
                continue  # '*' labels carry no duration information
            downstream = any(loc == outcome_location for loc, _ in path[i + 1 :])
            if stayed_long:
                n_long += weight
                hit_long += weight * downstream
            else:
                n_short += weight
                hit_short += weight * downstream
            break
    p_long = hit_long / n_long if n_long else 0.0
    p_short = hit_short / n_short if n_short else 0.0
    return {
        "p_long": p_long,
        "p_short": p_short,
        "lift": (p_long / p_short) if p_short > 0 else float("inf") if p_long else 0.0,
        "n_long": float(n_long),
        "n_short": float(n_short),
    }


def compare_flowgraphs(
    current: FlowGraph, baseline: FlowGraph, top_k: int = 10
) -> list[dict[str, object]]:
    """Largest per-node distribution shifts between two flowgraphs.

    Intro question 3's "contrast with historic flow information": for each
    node present in either graph, compute the total-variation shift of its
    transition and duration distributions; return the *top_k* largest.
    """
    prefixes = {n.prefix for n in current.nodes()} | {
        n.prefix for n in baseline.nodes()
    }
    shifts: list[dict[str, object]] = []
    for prefix in prefixes:
        here = current.node(prefix) if current.has_node(prefix) else None
        there = baseline.node(prefix) if baseline.has_node(prefix) else None
        if here is None or there is None:
            shifts.append(
                {
                    "prefix": prefix,
                    "transition_shift": 1.0,
                    "duration_shift": 1.0,
                    "note": "branch missing in one period",
                }
            )
            continue
        shifts.append(
            {
                "prefix": prefix,
                "transition_shift": total_variation(
                    here.transition_distribution(), there.transition_distribution()
                ),
                "duration_shift": total_variation(
                    here.duration_distribution(), there.duration_distribution()
                ),
                "note": "",
            }
        )
    shifts.sort(
        key=lambda s: -(s["transition_shift"] + s["duration_shift"])  # type: ignore[operator]
    )
    return shifts[:top_k]
